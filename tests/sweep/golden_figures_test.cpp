// Golden-output determinism pins for the figure scenarios beyond fig. 6.
//
// The fig06 digest (golden_output_test.cpp) covers the forward data path
// under the quick-mode sweep grid, but it never exercises a cwnd trace, the
// Dummynet-style DropTail bottleneck, or the test-bed's delayed-ACK (d = 2)
// reverse-path timing. These two digests close that gap:
//
//   fig03  — quasi-global synchronization trace: ns-2 dumbbell, 24 flows,
//            a 50 ms / 100 Mbps pulse every 2 s, cwnd trace of flow 0.
//   fig12  — test-bed scenario: 10 flows at 150 ms RTT, minRTO 200 ms,
//            delayed ACKs, run under BOTH the paper's RED config and a
//            Dummynet-style DropTail bottleneck.
//
// Every numeric field of the RunResult — bins, traces, queue counters, TCP
// state counters, event count — is serialized at full precision (%.17g
// round-trips doubles exactly) and FNV-1a hashed. The digests were
// generated at commit 6550a94 (pre express-lane/event-fusion); the default
// full link path must keep reproducing them bit-for-bit.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

void append(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g\n", key, value);
  out += buf;
}

void append(std::string& out, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 "\n", key, value);
  out += buf;
}

/// Serialize every observable field of a RunResult at full precision.
std::string serialize(const RunResult& r) {
  std::string out;
  append(out, "goodput_bytes", static_cast<std::uint64_t>(r.goodput_bytes));
  append(out, "goodput_rate", r.goodput_rate);
  append(out, "utilization", r.utilization);
  append(out, "fairness", r.fairness_index);
  append(out, "bin_width", r.bin_width);
  for (Bytes b : r.per_flow_goodput) {
    append(out, "flow", static_cast<std::uint64_t>(b));
  }
  for (double v : r.incoming_bins) append(out, "in", v);
  for (double v : r.attack_bins) append(out, "atk", v);
  for (double v : r.queue_occupancy) append(out, "occ", v);
  for (double v : r.red_avg_samples) append(out, "avg", v);
  append(out, "q_enqueued", r.bottleneck_queue.enqueued);
  append(out, "q_dequeued", r.bottleneck_queue.dequeued);
  append(out, "q_dropped", r.bottleneck_queue.dropped);
  append(out, "q_dropped_tcp", r.bottleneck_queue.dropped_tcp);
  append(out, "q_dropped_attack", r.bottleneck_queue.dropped_attack);
  append(out, "q_bytes_dropped", r.bottleneck_queue.bytes_dropped);
  append(out, "red_early", r.red_early_drops);
  append(out, "red_forced", r.red_forced_drops);
  append(out, "timeouts", r.total_timeouts);
  append(out, "fast_recoveries", r.total_fast_recoveries);
  append(out, "retransmits", r.total_retransmits);
  append(out, "jitter", r.mean_delivery_jitter);
  append(out, "attack_packets", r.attack_packets_sent);
  append(out, "events", r.events_executed);
  for (const auto& [t, w] : r.cwnd_trace) {
    append(out, "cwnd_t", t);
    append(out, "cwnd_w", w);
  }
  return out;
}

// Digests generated at commit 6550a94. Regenerate ONLY for a change that
// intentionally alters simulation semantics, and say so in the commit
// message.
constexpr std::uint64_t kFig03Digest = 0xdb3c1966f47adfa2ull;
constexpr std::uint64_t kFig12RedDigest = 0x328f57d94a030509ull;
constexpr std::uint64_t kFig12DropTailDigest = 0xebe7d50b5a3f53cfull;

TEST(GoldenFiguresTest, Fig03SynchronizationTraceMatchesDigest) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(24);
  PulseTrain train;
  train.textent = ms(50);
  train.rattack = mbps(100);
  train.tspace = ms(1950);

  RunControl control;
  control.warmup = sec(3);
  control.measure = sec(10);
  control.traced_flow = 0;

  const RunResult result = run_scenario(config, train, control);
  const std::uint64_t digest = fnv1a64(serialize(result));
  EXPECT_EQ(digest, kFig03Digest)
      << "fig03 scenario output changed: actual digest 0x" << std::hex
      << digest;
}

TEST(GoldenFiguresTest, Fig12TestbedRedMatchesDigest) {
  ScenarioConfig config = ScenarioConfig::testbed(10);
  const PulseTrain train =
      PulseTrain::from_gamma(ms(150), mbps(20), 0.5, config.bottleneck);

  RunControl control;
  control.warmup = sec(2);
  control.measure = sec(8);

  const RunResult result = run_scenario(config, train, control);
  const std::uint64_t digest = fnv1a64(serialize(result));
  EXPECT_EQ(digest, kFig12RedDigest)
      << "fig12 RED scenario output changed: actual digest 0x" << std::hex
      << digest;
}

TEST(GoldenFiguresTest, Fig12TestbedDropTailMatchesDigest) {
  // Same test-bed, Dummynet-style tail-drop bottleneck: exercises the
  // DropTail discipline end-to-end (including reverse-path ACK queueing)
  // rather than through unit tests alone.
  ScenarioConfig config = ScenarioConfig::testbed(10);
  config.queue = QueueKind::kDropTail;
  const PulseTrain train =
      PulseTrain::from_gamma(ms(150), mbps(20), 0.5, config.bottleneck);

  RunControl control;
  control.warmup = sec(2);
  control.measure = sec(8);

  const RunResult result = run_scenario(config, train, control);
  const std::uint64_t digest = fnv1a64(serialize(result));
  EXPECT_EQ(digest, kFig12DropTailDigest)
      << "fig12 DropTail scenario output changed: actual digest 0x"
      << std::hex << digest;
}

}  // namespace
}  // namespace pdos
