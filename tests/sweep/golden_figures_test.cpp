// Golden-output determinism pins for the figure scenarios beyond fig. 6.
//
// The fig06 digest (golden_output_test.cpp) covers the forward data path
// under the quick-mode sweep grid, but it never exercises a cwnd trace, the
// Dummynet-style DropTail bottleneck, or the test-bed's delayed-ACK (d = 2)
// reverse-path timing. These two digests close that gap:
//
//   fig03  — quasi-global synchronization trace: ns-2 dumbbell, 24 flows,
//            a 50 ms / 100 Mbps pulse every 2 s, cwnd trace of flow 0.
//   fig12  — test-bed scenario: 10 flows at 150 ms RTT, minRTO 200 ms,
//            delayed ACKs, run under BOTH the paper's RED config and a
//            Dummynet-style DropTail bottleneck.
//
// Every numeric field of the RunResult — bins, traces, queue counters, TCP
// state counters, event count — is serialized at full precision (%.17g
// round-trips doubles exactly) and FNV-1a hashed. The digests were
// generated at commit 6550a94 (pre express-lane/event-fusion); the default
// full link path must keep reproducing them bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "support/digest.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

// Serialization, hashing, and the pinned digests live in
// tests/support/digest.hpp, shared with the sharded-run identity suite
// (tests/pdes/pdes_test.cpp) so both pin the SAME constants.
using testsupport::fnv1a64;
using testsupport::kFig03Digest;
using testsupport::kFig12DropTailDigest;
using testsupport::kFig12RedDigest;
using testsupport::serialize;

TEST(GoldenFiguresTest, Fig03SynchronizationTraceMatchesDigest) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(24);
  PulseTrain train;
  train.textent = ms(50);
  train.rattack = mbps(100);
  train.tspace = ms(1950);

  RunControl control;
  control.warmup = sec(3);
  control.measure = sec(10);
  control.traced_flow = 0;

  const RunResult result = run_scenario(config, train, control);
  const std::uint64_t digest = fnv1a64(serialize(result));
  EXPECT_EQ(digest, kFig03Digest)
      << "fig03 scenario output changed: actual digest 0x" << std::hex
      << digest;
}

TEST(GoldenFiguresTest, Fig12TestbedRedMatchesDigest) {
  ScenarioConfig config = ScenarioConfig::testbed(10);
  const PulseTrain train =
      PulseTrain::from_gamma(ms(150), mbps(20), 0.5, config.bottleneck);

  RunControl control;
  control.warmup = sec(2);
  control.measure = sec(8);

  const RunResult result = run_scenario(config, train, control);
  const std::uint64_t digest = fnv1a64(serialize(result));
  EXPECT_EQ(digest, kFig12RedDigest)
      << "fig12 RED scenario output changed: actual digest 0x" << std::hex
      << digest;
}

TEST(GoldenFiguresTest, Fig12TestbedDropTailMatchesDigest) {
  // Same test-bed, Dummynet-style tail-drop bottleneck: exercises the
  // DropTail discipline end-to-end (including reverse-path ACK queueing)
  // rather than through unit tests alone.
  ScenarioConfig config = ScenarioConfig::testbed(10);
  config.queue = QueueKind::kDropTail;
  const PulseTrain train =
      PulseTrain::from_gamma(ms(150), mbps(20), 0.5, config.bottleneck);

  RunControl control;
  control.warmup = sec(2);
  control.measure = sec(8);

  const RunResult result = run_scenario(config, train, control);
  const std::uint64_t digest = fnv1a64(serialize(result));
  EXPECT_EQ(digest, kFig12DropTailDigest)
      << "fig12 DropTail scenario output changed: actual digest 0x"
      << std::hex << digest;
}

}  // namespace
}  // namespace pdos
