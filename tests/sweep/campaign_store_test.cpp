// CampaignStore: sharded persistence round-trips, torn-tail recovery,
// concurrent cross-process appends, the lease claim protocol, incremental
// refresh between live stores, compaction, and foreign-file tolerance.
#include "sweep/campaign_store.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

namespace pdos::sweep {
namespace {

class TempStoreDir {
 public:
  TempStoreDir() {
    char name[] = "/tmp/pdos_campaign_store_test_XXXXXX";
    EXPECT_NE(mkdtemp(name), nullptr);
    path_ = name;
  }
  ~TempStoreDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

CachedPoint sample_point(double salt = 0.0) {
  CachedPoint p;
  p.c_psi = 0.123456789012345678 + salt;
  p.analytic_degradation = 0.25;
  p.analytic_gain = 0.5;
  p.shrew = true;
  p.baseline_goodput = 14095466.666666666;
  p.goodput = 7047733.3333333331 + salt;
  p.measured_degradation = 0.5;
  p.measured_gain = 0.25;
  p.utilization = 0.47;
  p.fairness = 0.93;
  p.timeouts = 321;
  p.fast_recoveries = 12;
  p.attack_packets = 98765;
  p.events = 1234567890123ull;
  return p;
}

/// A key landing in segment `seg` (top 4 bits) with low bits `low`.
std::uint64_t key_in_segment(unsigned seg, std::uint64_t low) {
  return (static_cast<std::uint64_t>(seg) << 60) | low;
}

TEST(CampaignStoreTest, MissThenHitAndReload) {
  TempStoreDir dir;
  const CachedPoint stored = sample_point();
  {
    CampaignStore store(dir.path());
    CachedPoint out;
    EXPECT_FALSE(store.lookup_point(42, out));
    store.store_point(42, stored);
    store.store_baseline(43, 14095466.666666666);
    ASSERT_TRUE(store.lookup_point(42, out));
    EXPECT_EQ(store.size(), 2u);
  }
  CampaignStore reloaded(dir.path());
  CachedPoint out;
  ASSERT_TRUE(reloaded.lookup_point(42, out));
  // Bit-exact doubles: this is what makes replayed CSVs byte-identical.
  EXPECT_EQ(out.c_psi, stored.c_psi);
  EXPECT_EQ(out.goodput, stored.goodput);
  EXPECT_EQ(out.events, stored.events);
  double goodput = 0.0;
  ASSERT_TRUE(reloaded.lookup_baseline(43, goodput));
  EXPECT_EQ(goodput, 14095466.666666666);
}

TEST(CampaignStoreTest, ShardsByKeyPrefixAcrossSegmentFiles) {
  TempStoreDir dir;
  CampaignStore store(dir.path());
  EXPECT_EQ(store.segments(), 16u);
  store.store_point(key_in_segment(0x0, 1), sample_point());
  store.store_point(key_in_segment(0xf, 1), sample_point());
  EXPECT_NE(store.segment_path(key_in_segment(0x0, 1)),
            store.segment_path(key_in_segment(0xf, 1)));
  EXPECT_TRUE(
      std::filesystem::exists(store.segment_path(key_in_segment(0x0, 1))));
  EXPECT_TRUE(
      std::filesystem::exists(store.segment_path(key_in_segment(0xf, 1))));
  // Segments not appended to are never created.
  EXPECT_FALSE(
      std::filesystem::exists(store.segment_path(key_in_segment(0x7, 1))));
}

TEST(CampaignStoreTest, TornTailIsSkippedAndRepairedOnAppend) {
  TempStoreDir dir;
  const std::uint64_t key = key_in_segment(0x3, 7);
  std::string seg_path;
  {
    CampaignStore store(dir.path());
    store.store_point(key, sample_point());
    seg_path = store.segment_path(key);
  }
  {
    // A worker killed mid-write: partial record, no trailing newline.
    std::ofstream out(seg_path, std::ios::app);
    out << "P 3000000000000007 0.5 0.2";
  }
  {
    CampaignStore store(dir.path());
    CachedPoint out;
    ASSERT_TRUE(store.lookup_point(key, out));  // intact record survives
    EXPECT_EQ(store.size(), 1u);
    // Appending repairs the tail: the new record starts on a fresh line.
    store.store_point(key_in_segment(0x3, 8), sample_point(1.0));
  }
  CampaignStore reloaded(dir.path());
  CachedPoint out;
  EXPECT_TRUE(reloaded.lookup_point(key, out));
  ASSERT_TRUE(reloaded.lookup_point(key_in_segment(0x3, 8), out));
  EXPECT_EQ(out.goodput, sample_point(1.0).goodput);
  EXPECT_EQ(reloaded.size(), 2u);
}

TEST(CampaignStoreTest, ConcurrentForkAppendsAllSurvive) {
  TempStoreDir dir;
  constexpr int kChildren = 4;
  constexpr std::uint64_t kPerChild = 50;
  std::vector<pid_t> pids;
  for (int c = 0; c < kChildren; ++c) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      CampaignStore store(dir.path());
      for (std::uint64_t i = 0; i < kPerChild; ++i) {
        // Every child hammers the SAME segments (keys differ only in low
        // bits), so appends genuinely contend on the flock.
        const std::uint64_t key = key_in_segment(
            static_cast<unsigned>(i % 4),
            (static_cast<std::uint64_t>(c) << 32) | i);
        store.store_point(key, sample_point(static_cast<double>(i)));
      }
      _exit(0);
    }
    pids.push_back(pid);
  }
  for (pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  CampaignStore merged(dir.path());
  EXPECT_EQ(merged.size(), kChildren * kPerChild);
  CachedPoint out;
  for (int c = 0; c < kChildren; ++c) {
    for (std::uint64_t i = 0; i < kPerChild; ++i) {
      const std::uint64_t key = key_in_segment(
          static_cast<unsigned>(i % 4),
          (static_cast<std::uint64_t>(c) << 32) | i);
      ASSERT_TRUE(merged.lookup_point(key, out));
      EXPECT_EQ(out.goodput, sample_point(static_cast<double>(i)).goodput);
    }
  }
}

TEST(CampaignStoreTest, ClaimProtocolAcquireBusyDoneRelease) {
  TempStoreDir dir;
  CampaignStore a(dir.path());
  CampaignStore b(dir.path());
  EXPECT_NE(a.owner(), b.owner());
  const std::uint64_t key = key_in_segment(0x5, 11);

  // Cold key: first claimant wins, the second sees a live foreign lease.
  EXPECT_EQ(a.claim_point(key), PointStore::ClaimStatus::kAcquired);
  EXPECT_EQ(b.claim_point(key), PointStore::ClaimStatus::kBusy);
  // Re-claiming our own lease is idempotent, not a deadlock.
  EXPECT_EQ(a.claim_point(key), PointStore::ClaimStatus::kAcquired);

  // The result supersedes the lease: the waiter's next claim reports done
  // and the record is loaded by the same scan.
  a.store_point(key, sample_point());
  EXPECT_EQ(b.claim_point(key), PointStore::ClaimStatus::kDone);
  CachedPoint out;
  EXPECT_TRUE(b.lookup_point(key, out));

  // Release frees a claim without a result.
  const std::uint64_t key2 = key_in_segment(0x5, 12);
  EXPECT_EQ(a.claim_point(key2), PointStore::ClaimStatus::kAcquired);
  a.release_point(key2);
  EXPECT_EQ(b.claim_point(key2), PointStore::ClaimStatus::kAcquired);

  // Baselines claim through the same protocol.
  const std::uint64_t key3 = key_in_segment(0x6, 13);
  EXPECT_EQ(a.claim_baseline(key3), PointStore::ClaimStatus::kAcquired);
  EXPECT_EQ(b.claim_baseline(key3), PointStore::ClaimStatus::kBusy);
  a.store_baseline(key3, 1.0e7);
  EXPECT_EQ(b.claim_baseline(key3), PointStore::ClaimStatus::kDone);
}

TEST(CampaignStoreTest, ExpiredLeaseIsReclaimable) {
  TempStoreDir dir;
  CampaignStore crashed(dir.path(), /*lease_ttl_seconds=*/0.05);
  CampaignStore survivor(dir.path(), /*lease_ttl_seconds=*/0.05);
  const std::uint64_t key = key_in_segment(0x9, 21);
  EXPECT_EQ(crashed.claim_point(key), PointStore::ClaimStatus::kAcquired);
  EXPECT_EQ(survivor.claim_point(key), PointStore::ClaimStatus::kBusy);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // The "crashed" worker never stored a result; its lease aged out and the
  // key is claimable again — crash recovery with no fsck pass.
  EXPECT_EQ(survivor.claim_point(key), PointStore::ClaimStatus::kAcquired);
}

TEST(CampaignStoreTest, RefreshFoldsInPeerAppendsIncrementally) {
  TempStoreDir dir;
  CampaignStore writer(dir.path());
  CampaignStore reader(dir.path());
  const std::uint64_t key = key_in_segment(0xa, 31);
  writer.store_point(key, sample_point());
  CachedPoint out;
  EXPECT_FALSE(reader.lookup_point(key, out));  // not scanned yet
  reader.refresh();
  ASSERT_TRUE(reader.lookup_point(key, out));
  EXPECT_EQ(out.goodput, sample_point().goodput);
  // Incremental: a second append lands after the reader's scan offset.
  const std::uint64_t key2 = key_in_segment(0xa, 32);
  writer.store_point(key2, sample_point(2.0));
  reader.refresh();
  ASSERT_TRUE(reader.lookup_point(key2, out));
  EXPECT_EQ(out.goodput, sample_point(2.0).goodput);
}

TEST(CampaignStoreTest, CompactDropsCoordinationRecordsKeepsResults) {
  TempStoreDir dir;
  CampaignStore store(dir.path());
  const std::uint64_t done = key_in_segment(0xb, 41);
  const std::uint64_t abandoned = key_in_segment(0xb, 42);
  EXPECT_EQ(store.claim_point(done), PointStore::ClaimStatus::kAcquired);
  store.store_point(done, sample_point());
  EXPECT_EQ(store.claim_point(abandoned), PointStore::ClaimStatus::kAcquired);
  store.release_point(abandoned);
  const std::size_t dropped = store.compact();
  EXPECT_GE(dropped, 3u);  // both leases + the release

  // Same facts before and after, for this store and for a fresh load.
  CachedPoint out;
  EXPECT_TRUE(store.lookup_point(done, out));
  CampaignStore reloaded(dir.path());
  ASSERT_TRUE(reloaded.lookup_point(done, out));
  EXPECT_EQ(out.goodput, sample_point().goodput);
  EXPECT_EQ(reloaded.size(), 1u);
  // The live store survives its own compaction and can keep appending
  // (scan offsets reset cleanly despite the file shrinking).
  store.store_point(key_in_segment(0xb, 43), sample_point(3.0));
  CampaignStore again(dir.path());
  EXPECT_EQ(again.size(), 2u);
}

TEST(CampaignStoreTest, ForeignSegmentLoadsEmptyAndIsRewritten) {
  TempStoreDir dir;
  const std::uint64_t key = key_in_segment(0x4, 51);
  std::string seg_path;
  {
    CampaignStore probe(dir.path());
    seg_path = probe.segment_path(key);
  }
  {
    std::ofstream out(seg_path);
    out << "not a campaign segment\nP ffff bogus\n";
  }
  CampaignStore store(dir.path());
  EXPECT_EQ(store.size(), 0u);
  store.store_point(key, sample_point());
  CampaignStore reloaded(dir.path());
  CachedPoint out;
  ASSERT_TRUE(reloaded.lookup_point(key, out));
  EXPECT_EQ(reloaded.size(), 1u);
  // The foreign content is gone, replaced by a valid header.
  std::ifstream in(seg_path);
  std::string first;
  std::getline(in, first);
  EXPECT_NE(first, "not a campaign segment");
}

}  // namespace
}  // namespace pdos::sweep
