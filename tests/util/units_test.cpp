#include "util/units.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace pdos {
namespace {

TEST(UnitsTest, TimeHelpers) {
  EXPECT_DOUBLE_EQ(sec(2.5), 2.5);
  EXPECT_DOUBLE_EQ(ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(us(2000), 0.002);
  EXPECT_DOUBLE_EQ(to_ms(0.05), 50.0);
}

TEST(UnitsTest, RateHelpers) {
  EXPECT_DOUBLE_EQ(bps(100), 100.0);
  EXPECT_DOUBLE_EQ(kbps(3), 3000.0);
  EXPECT_DOUBLE_EQ(mbps(15), 15e6);
  EXPECT_DOUBLE_EQ(gbps(1), 1e9);
  EXPECT_DOUBLE_EQ(to_mbps(25e6), 25.0);
}

TEST(UnitsTest, TransmissionTime) {
  // 1000 bytes at 8 kbps -> exactly 1 second.
  EXPECT_DOUBLE_EQ(transmission_time(1000, kbps(8)), 1.0);
  // 1040-byte packet on 15 Mbps.
  EXPECT_NEAR(transmission_time(1040, mbps(15)), 1040.0 * 8 / 15e6, 1e-12);
}

TEST(UnitsTest, BytesAtRate) {
  EXPECT_EQ(bytes_at_rate(mbps(8), sec(1.0)), 1000000);
  EXPECT_EQ(bytes_at_rate(kbps(8), ms(500)), 500);
}

TEST(UnitsTest, RoundTripConsistency) {
  const Bytes size = 1234;
  const BitRate rate = mbps(42);
  const Time tx = transmission_time(size, rate);
  EXPECT_NEAR(static_cast<double>(bytes_at_rate(rate, tx)),
              static_cast<double>(size), 1.0);
}

TEST(AssertTest, CheckMacroThrowsInvariantError) {
  EXPECT_THROW(PDOS_CHECK(false), InvariantError);
  EXPECT_NO_THROW(PDOS_CHECK(true));
}

TEST(AssertTest, CheckMsgCarriesMessage) {
  try {
    PDOS_CHECK_MSG(1 == 2, "the details");
    FAIL() << "expected throw";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("the details"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(AssertTest, RequireThrowsParameterError) {
  EXPECT_THROW(PDOS_REQUIRE(false, "bad arg"), ParameterError);
  EXPECT_NO_THROW(PDOS_REQUIRE(true, "ok"));
}

}  // namespace
}  // namespace pdos
