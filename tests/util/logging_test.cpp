#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace pdos {
namespace {

// Logging writes to stderr; these tests pin the level gate logic rather
// than capturing output.

TEST(LoggingTest, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(LoggingTest, SetAndGetRoundTrip) {
  const LogLevel prev = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
  set_log_level(prev);
}

TEST(LoggingTest, LevelsAreOrdered) {
  EXPECT_LT(LogLevel::kTrace, LogLevel::kDebug);
  EXPECT_LT(LogLevel::kDebug, LogLevel::kInfo);
  EXPECT_LT(LogLevel::kInfo, LogLevel::kWarn);
  EXPECT_LT(LogLevel::kWarn, LogLevel::kOff);
}

TEST(LoggingTest, SuppressedLevelsDoNotFormat) {
  // The variadic arguments must not be evaluated... they are (stream
  // insertion happens after the gate), but the gate must prevent output
  // and must not crash for any payload when the level is off.
  set_log_level(LogLevel::kOff);
  log_info("value=", 42, " rate=", 3.14);
  log_warn("warn path");
  log_debug("debug path");
  set_log_level(LogLevel::kWarn);
  SUCCEED();
}

}  // namespace
}  // namespace pdos
