#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace pdos {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo |= x == 0;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

TEST(RngTest, ForkDecouplesFromParent) {
  Rng parent(5);
  Rng child = parent.fork();
  // Consuming from the child must not affect the parent's future stream.
  Rng parent2(5);
  (void)parent2.fork();
  for (int i = 0; i < 20; ++i) (void)child.uniform();
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(parent.uniform(), parent2.uniform());
}

TEST(RngTest, DrawSequenceMatchesReferenceImplementation) {
  // The distributions were hoisted from per-draw temporaries into inline
  // members invoked with an explicit param_type. libstdc++ distributions are
  // stateless draw-for-draw, so the sequence must stay bit-identical to the
  // original construct-per-draw code — the golden figure digests depend on
  // it. The reference below IS that original code.
  Rng rng(0xfeedface12345678ull);
  std::mt19937_64 reference(0xfeedface12345678ull);
  for (int i = 0; i < 20000; ++i) {
    {
      const double expected =
          std::uniform_real_distribution<double>(0.0, 1.0)(reference);
      ASSERT_EQ(rng.uniform(), expected) << "draw " << i;
    }
    {
      const double lo = -3.25 * (i % 7);
      const double hi = 11.5 + i % 13;
      const double expected =
          std::uniform_real_distribution<double>(lo, hi)(reference);
      ASSERT_EQ(rng.uniform(lo, hi), expected) << "draw " << i;
    }
    {
      const std::int64_t expected =
          std::uniform_int_distribution<std::int64_t>(-5, 1000 + i % 17)(
              reference);
      ASSERT_EQ(rng.uniform_int(-5, 1000 + i % 17), expected) << "draw " << i;
    }
    {
      const double mean = 0.5 + 0.125 * (i % 11);
      const double expected =
          std::exponential_distribution<double>(1.0 / mean)(reference);
      ASSERT_EQ(rng.exponential(mean), expected) << "draw " << i;
    }
  }
}

TEST(RngTest, MixedDrawOrderHasNoCrossTalk) {
  // Interleaving different draw kinds must not leak state between the
  // hoisted member distributions: each call's param_type fully determines
  // the mapping from engine output to value.
  Rng a(31337);
  Rng b(31337);
  // Consume through `a` in one order...
  const double a1 = a.uniform(2.0, 4.0);
  const double a2 = a.exponential(3.0);
  // ...and through `b` after touching other distributions' members first.
  (void)Rng(999).uniform_int(0, 9);
  const double b1 = b.uniform(2.0, 4.0);
  const double b2 = b.exponential(3.0);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a2, b2);
}

TEST(RngTest, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(5.0, 2.0), ParameterError);
  EXPECT_THROW(rng.uniform_int(5, 2), ParameterError);
  EXPECT_THROW(rng.exponential(0.0), ParameterError);
  EXPECT_THROW(rng.exponential(-1.0), ParameterError);
}

}  // namespace
}  // namespace pdos
