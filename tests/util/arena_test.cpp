// MonotonicArena: alignment, geometric block growth, oversize requests,
// and the rewind contract (retained blocks are re-walked in order, so a
// warm epoch replays the cold epoch's layout without new system memory).
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory_resource>
#include <vector>

namespace pdos {
namespace {

TEST(ArenaTest, AllocationsRespectAlignment) {
  MonotonicArena arena(256);
  for (std::size_t alignment : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = arena.allocate(3, alignment);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignment, 0u)
        << "alignment " << alignment;
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  MonotonicArena arena(64);  // force several block spills
  std::vector<std::pair<char*, std::size_t>> chunks;
  for (int i = 0; i < 100; ++i) {
    const std::size_t n = 1 + static_cast<std::size_t>(i % 37);
    auto* p = static_cast<char*>(arena.allocate(n, 1));
    std::memset(p, i, n);
    chunks.emplace_back(p, n);
  }
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    const auto [p, n] = chunks[i];
    for (std::size_t b = 0; b < n; ++b) {
      ASSERT_EQ(static_cast<unsigned char>(p[b]),
                static_cast<unsigned char>(i))
          << "chunk " << i << " byte " << b << " was overwritten";
    }
  }
}

TEST(ArenaTest, RewindRetainsBlocksAndReplaysLayout) {
  MonotonicArena arena(128);
  std::vector<void*> first;
  for (int i = 0; i < 64; ++i) first.push_back(arena.allocate(48, 8));
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t blocks = arena.block_count();
  ASSERT_GT(blocks, 1u) << "test should span several blocks";

  arena.rewind();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved) << "rewind must not free";
  EXPECT_EQ(arena.block_count(), blocks);

  // The identical allocation sequence lands on the identical addresses.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(arena.allocate(48, 8), first[static_cast<std::size_t>(i)])
        << "allocation " << i;
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved)
      << "warm epoch must not grow the arena";
}

TEST(ArenaTest, OversizeRequestGetsDedicatedBlock) {
  MonotonicArena arena(64);
  const std::size_t big = 1 << 20;
  auto* p = static_cast<char*>(arena.allocate(big, 16));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, big);  // the whole span must be writable
  EXPECT_GE(arena.bytes_reserved(), big);
}

TEST(ArenaTest, ReleaseFreesEverything) {
  MonotonicArena arena(128);
  for (int i = 0; i < 32; ++i) (void)arena.allocate(100, 8);
  arena.release();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.block_count(), 0u);
  // Still usable afterwards.
  EXPECT_NE(arena.allocate(16, 8), nullptr);
}

TEST(ArenaTest, WorksAsPmrUpstream) {
  MonotonicArena arena;
  std::pmr::vector<int> v(&arena);
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_GT(arena.bytes_in_use(), 0u);
  // pmr deallocate is a no-op by design; clearing the vector is safe.
  v.clear();
  v.shrink_to_fit();
}

}  // namespace
}  // namespace pdos
