#include "attack/distributed.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

PulseTrain base_train() {
  PulseTrain train;
  train.textent = ms(50);
  train.rattack = mbps(25);
  train.tspace = ms(150);
  train.packet_bytes = 1000;
  return train;
}

TEST(SplitTrainTest, RatesSumToAggregate) {
  const PulseTrain train = base_train();
  for (int k : {1, 2, 5, 10}) {
    const auto subs = split_train(train, k);
    ASSERT_EQ(subs.size(), static_cast<std::size_t>(k));
    double total = 0.0;
    for (const auto& sub : subs) {
      total += sub.rattack;
      EXPECT_DOUBLE_EQ(sub.textent, train.textent);
      EXPECT_DOUBLE_EQ(sub.tspace, train.tspace);
    }
    EXPECT_NEAR(total, train.rattack, 1e-6);
  }
}

TEST(SplitTrainTest, TooManySourcesRejected) {
  // 25 Mbps / 50 ms pulse with 1000-byte packets carries ~156 packets;
  // far more sources than that cannot each fit one packet per pulse.
  EXPECT_THROW(split_train(base_train(), 1000), ParameterError);
  EXPECT_THROW(split_train(base_train(), 0), ParameterError);
}

TEST(SpreadPhasesTest, ZeroSpreadIsSynchronized) {
  Rng rng(1);
  const auto phases = spread_phases(5, 0.0, rng);
  for (Time phase : phases) EXPECT_DOUBLE_EQ(phase, 0.0);
}

TEST(SpreadPhasesTest, PhasesWithinBound) {
  Rng rng(2);
  const auto phases = spread_phases(50, ms(25), rng);
  ASSERT_EQ(phases.size(), 50u);
  bool varied = false;
  for (Time phase : phases) {
    EXPECT_GE(phase, 0.0);
    EXPECT_LT(phase, ms(25));
    if (phase > 0.0) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(PerSourceGammaTest, ShrinksAsOneOverK) {
  const PulseTrain train = base_train();
  const double aggregate = train.gamma(mbps(15));
  EXPECT_DOUBLE_EQ(per_source_gamma(train, 1, mbps(15)), aggregate);
  EXPECT_DOUBLE_EQ(per_source_gamma(train, 4, mbps(15)), aggregate / 4.0);
}

TEST(DistributedScenarioTest, AggregateAttackRateIndependentOfK) {
  // Same seed, same aggregate train, different source counts: the packets
  // reaching the bottleneck must match (within pulse-quantization noise).
  RunControl control;
  control.warmup = sec(1);
  control.measure = sec(5);
  PulseTrain train = base_train();

  std::uint64_t single_packets = 0;
  double single_degradation = 0.0;
  {
    ScenarioConfig config = ScenarioConfig::ns2_dumbbell(8);
    const BitRate baseline = measure_baseline(config, control);
    const GainMeasurement point =
        measure_gain(config, train, 1.0, control, baseline);
    single_packets = point.run.attack_packets_sent;
    single_degradation = point.degradation;
  }
  {
    ScenarioConfig config = ScenarioConfig::ns2_dumbbell(8);
    config.num_attackers = 5;
    const BitRate baseline = measure_baseline(config, control);
    const GainMeasurement point =
        measure_gain(config, train, 1.0, control, baseline);
    EXPECT_NEAR(static_cast<double>(point.run.attack_packets_sent),
                static_cast<double>(single_packets),
                0.05 * static_cast<double>(single_packets));
    EXPECT_NEAR(point.degradation, single_degradation, 0.2);
  }
}

TEST(DistributedScenarioTest, PhaseSpreadStillDamages) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(8);
  config.num_attackers = 4;
  config.attacker_phase_spread = ms(25);
  RunControl control;
  control.warmup = sec(2);
  control.measure = sec(8);
  const BitRate baseline = measure_baseline(config, control);
  const GainMeasurement point = measure_gain(
      config, PulseTrain::from_gamma(ms(50), mbps(30), 0.6, mbps(15)), 1.0,
      control, baseline);
  EXPECT_GT(point.degradation, 0.3);
}

TEST(DistributedScenarioTest, ConfigValidation) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);
  config.num_attackers = 0;
  EXPECT_THROW(config.validate(), ParameterError);
  config = ScenarioConfig::ns2_dumbbell(5);
  config.attacker_phase_spread = -1.0;
  EXPECT_THROW(config.validate(), ParameterError);
}

}  // namespace
}  // namespace pdos
