#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "attack/pulse.hpp"
#include "attack/shrew.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

class CountingSink : public PacketHandler {
 public:
  explicit CountingSink(Simulator& sim) : sim_(sim) {}
  void handle(Packet pkt) override {
    times.push_back(sim_.now());
    bytes += pkt.size_bytes;
    EXPECT_TRUE(pkt.is_attack());
  }
  std::vector<Time> times;
  Bytes bytes = 0;

 private:
  Simulator& sim_;
};

TEST(PulseTrainTest, DerivedQuantities) {
  PulseTrain train;
  train.textent = ms(50);
  train.tspace = ms(1950);
  train.rattack = mbps(100);
  EXPECT_DOUBLE_EQ(train.period(), 2.0);
  EXPECT_DOUBLE_EQ(train.mu(), 39.0);
  EXPECT_DOUBLE_EQ(train.average_rate(), mbps(2.5));
  EXPECT_DOUBLE_EQ(train.gamma(mbps(15)), 2.5 / 15.0);
}

TEST(PulseTrainTest, FromGammaInvertsGamma) {
  for (double gamma : {0.1, 0.3, 0.5, 0.9}) {
    const PulseTrain train =
        PulseTrain::from_gamma(ms(50), mbps(25), gamma, mbps(15));
    EXPECT_NEAR(train.gamma(mbps(15)), gamma, 1e-12);
    EXPECT_DOUBLE_EQ(train.textent, ms(50));
    EXPECT_DOUBLE_EQ(train.rattack, mbps(25));
  }
}

TEST(PulseTrainTest, FromGammaRejectsInfeasibleGamma) {
  // gamma > C_attack = 10/15 would need negative spacing.
  EXPECT_THROW(PulseTrain::from_gamma(ms(50), mbps(10), 0.9, mbps(15)),
               ParameterError);
  EXPECT_THROW(PulseTrain::from_gamma(ms(50), mbps(25), 0.0, mbps(15)),
               ParameterError);
  EXPECT_THROW(PulseTrain::from_gamma(ms(50), mbps(25), 1.5, mbps(15)),
               ParameterError);
}

TEST(PulseTrainTest, FloodingHasUnitDutyCycle) {
  const PulseTrain flood = PulseTrain::flooding(mbps(20));
  EXPECT_DOUBLE_EQ(flood.tspace, 0.0);
  EXPECT_DOUBLE_EQ(flood.average_rate(), mbps(20));
  EXPECT_DOUBLE_EQ(flood.mu(), 0.0);
}

TEST(PulseTrainTest, ValidationRejectsNonsense) {
  PulseTrain train;
  train.textent = 0.0;
  EXPECT_THROW(train.validate(), ParameterError);
  train = PulseTrain{};
  train.tspace = -1.0;
  EXPECT_THROW(train.validate(), ParameterError);
  train = PulseTrain{};
  train.n = 0;
  EXPECT_THROW(train.validate(), ParameterError);
  train = PulseTrain{};
  train.packet_bytes = 0;
  EXPECT_THROW(train.validate(), ParameterError);
}

TEST(PulseAttackerTest, EmitsExpectedPacketCountPerPulse) {
  Simulator sim;
  CountingSink sink(sim);
  PulseTrain train;
  train.textent = ms(10);
  train.tspace = ms(90);
  train.rattack = mbps(8);  // 8 Mbps, 1000-byte packets -> 1 ms spacing
  train.packet_bytes = 1000;
  train.n = 3;
  PulseAttacker attacker(sim, train, 100, 200, &sink);
  attacker.start(0.0);
  sim.run();
  EXPECT_EQ(attacker.stats().pulses_started, 3);
  // 10 packets fit in each 10 ms pulse at 1 ms spacing.
  EXPECT_EQ(attacker.stats().packets_sent, 30);
  EXPECT_EQ(sink.bytes, 30 * 1000);
}

TEST(PulseAttackerTest, PulsesAreSpacedByPeriod) {
  Simulator sim;
  CountingSink sink(sim);
  PulseTrain train;
  train.textent = ms(10);
  train.tspace = ms(90);
  train.rattack = mbps(8);
  train.packet_bytes = 1000;
  train.n = 5;
  PulseAttacker attacker(sim, train, 100, 200, &sink);
  attacker.start(sec(1.0));
  sim.run();
  ASSERT_FALSE(sink.times.empty());
  // First packet of each pulse lands at 1.0, 1.1, 1.2, ...
  for (int p = 0; p < 5; ++p) {
    const Time expected = 1.0 + 0.1 * p;
    bool found = false;
    for (Time t : sink.times) {
      if (std::abs(t - expected) < 1e-9) found = true;
    }
    EXPECT_TRUE(found) << "missing pulse start at " << expected;
  }
}

TEST(PulseAttackerTest, AverageRateMatchesGammaOverLongRun) {
  Simulator sim;
  CountingSink sink(sim);
  PulseTrain train;
  train.textent = ms(50);
  train.tspace = ms(150);
  train.rattack = mbps(20);
  train.packet_bytes = 1000;
  train.n = 50;  // 50 periods of 200 ms -> ~10 s
  PulseAttacker attacker(sim, train, 100, 200, &sink);
  attacker.start(0.0);
  sim.run();
  const Time span = train.period() * static_cast<double>(train.n);
  const BitRate measured = static_cast<double>(sink.bytes) * 8.0 / span;
  EXPECT_NEAR(measured / train.average_rate(), 1.0, 0.05);
}

TEST(PulseAttackerTest, StopHaltsFuturePulses) {
  Simulator sim;
  CountingSink sink(sim);
  PulseTrain train;
  train.textent = ms(10);
  train.tspace = ms(90);
  train.rattack = mbps(8);
  train.packet_bytes = 1000;
  PulseAttacker attacker(sim, train, 100, 200, &sink);
  attacker.start(0.0);
  sim.schedule(ms(250), [&] { attacker.stop(); });
  sim.run_until(sec(2.0));
  EXPECT_EQ(attacker.stats().pulses_started, 3);  // t = 0, 0.1, 0.2
}

TEST(PulseAttackerTest, SinglePacketPulseWhenRateTiny) {
  Simulator sim;
  CountingSink sink(sim);
  PulseTrain train;
  train.textent = ms(1);
  train.tspace = ms(99);
  train.rattack = kbps(64);  // spacing longer than the pulse itself
  train.packet_bytes = 1000;
  train.n = 2;
  PulseAttacker attacker(sim, train, 100, 200, &sink);
  attacker.start(0.0);
  sim.run();
  EXPECT_EQ(attacker.stats().packets_sent, 2);  // one per pulse, minimum
}

TEST(ShrewTest, PeriodsAreHarmonicsOfMinRto) {
  EXPECT_DOUBLE_EQ(shrew_period(sec(1.0), 1), 1.0);
  EXPECT_DOUBLE_EQ(shrew_period(sec(1.0), 2), 0.5);
  EXPECT_NEAR(shrew_period(sec(1.0), 3), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(shrew_period(ms(200), 2), 0.1);
}

TEST(ShrewTest, PeriodListRespectsFloor) {
  const auto periods = shrew_periods(sec(1.0), 10, ms(240));
  ASSERT_EQ(periods.size(), 4u);  // 1, 0.5, 0.333, 0.25
  EXPECT_DOUBLE_EQ(periods[0], 1.0);
  EXPECT_DOUBLE_EQ(periods[3], 0.25);
}

TEST(ShrewTest, MatchingHarmonicDetection) {
  // The paper's Fig. 10 shrew points for minRTO = 1 s.
  EXPECT_EQ(matching_shrew_harmonic(ms(500), sec(1.0), 10).value(), 2);
  EXPECT_EQ(matching_shrew_harmonic(sec(1.0), sec(1.0), 10).value(), 1);
  EXPECT_EQ(matching_shrew_harmonic(1.0 / 3.0, sec(1.0), 10).value(), 3);
  // 5% off is still within the default 10% tolerance.
  EXPECT_TRUE(matching_shrew_harmonic(ms(525), sec(1.0), 10).has_value());
  // Far from any harmonic.
  EXPECT_FALSE(matching_shrew_harmonic(ms(700), sec(1.0), 4).has_value());
}

TEST(ShrewTest, InvalidArgsThrow) {
  EXPECT_THROW(shrew_period(0.0, 1), ParameterError);
  EXPECT_THROW(shrew_period(1.0, 0), ParameterError);
  EXPECT_THROW(matching_shrew_harmonic(0.0, 1.0, 5), ParameterError);
}

}  // namespace
}  // namespace pdos
