// Hybrid fluid/packet coupling tests: the RedQueue virtual-backlog hooks,
// the Link service-scale governor, and the kHybrid backend end to end.
#include "fluid/hybrid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "net/droptail.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/red.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

RedQueue make_red(std::size_t capacity) {
  return RedQueue(RedParams::paper_testbed(capacity), Rng(1));
}

Packet make_packet(int seq) {
  Packet pkt;
  pkt.size_bytes = 1040;
  pkt.flow = FlowId{0};
  pkt.seq = seq;
  return pkt;
}

TEST(RedFluidHooksTest, BacklogCountsTowardOccupancyAndCapacity) {
  RedQueue red = make_red(10);
  EXPECT_EQ(red.fluid_backlog(), 0.0);
  // 8 virtual packets: 2 slots left for real ones.
  EXPECT_EQ(red.fluid_arrive(8.0, 8.0), 8.0);
  EXPECT_EQ(red.fluid_backlog(), 8.0);
  EXPECT_TRUE(red.enqueue(make_packet(0)));
  EXPECT_TRUE(red.enqueue(make_packet(1)));
  // Queue is now at capacity (2 real + 8 virtual): forced drop.
  EXPECT_FALSE(red.enqueue(make_packet(2)));
  EXPECT_EQ(red.forced_drops(), 1u);
  // Draining the backlog frees the space again.
  red.fluid_drain(8.0);
  EXPECT_EQ(red.fluid_backlog(), 0.0);
  EXPECT_TRUE(red.enqueue(make_packet(3)));
}

TEST(RedFluidHooksTest, ArrivalsAreClampedToFreeSpace) {
  RedQueue red = make_red(10);
  // Request 20, admit 20 -> only 10 slots exist.
  EXPECT_EQ(red.fluid_arrive(20.0, 20.0), 10.0);
  EXPECT_EQ(red.fluid_backlog(), 10.0);
  // Full queue: nothing more fits, but the EWMA still sees the arrivals.
  const double avg_before = red.avg();
  EXPECT_EQ(red.fluid_arrive(5.0, 5.0), 0.0);
  EXPECT_GT(red.avg(), avg_before);
  red.fluid_drain(100.0);  // over-drain clamps at zero
  EXPECT_EQ(red.fluid_backlog(), 0.0);
}

TEST(RedFluidHooksTest, EwmaMovesTowardCombinedOccupancy) {
  RedQueue red = make_red(240);
  EXPECT_EQ(red.avg(), 0.0);
  red.fluid_arrive(100.0, 100.0);
  // avg <- q + (avg - q)(1 - wq)^n with q = 0 at arrival start: the first
  // call moves avg toward the pre-arrival occupancy (0), so avg stays 0;
  // the second call sees q = 100 and climbs.
  red.fluid_arrive(100.0, 0.0);
  EXPECT_GT(red.avg(), 0.0);
  EXPECT_LT(red.avg(), 200.0);
}

TEST(LinkServiceScaleTest, ScalesServiceTimes) {
  Simulator sim(1);
  auto* sink = sim.make<Node>(NodeId{0}, "sink", sim.memory());
  auto* queue = sim.make<DropTailQueue>(100, sim.memory());
  auto* link = sim.make<Link>(sim, "l", mbps(8), 0.0, queue,
                              static_cast<PacketHandler*>(sink), 1000);
  EXPECT_EQ(link->service_scale(), 1.0);
  link->set_service_scale(2.0);
  EXPECT_EQ(link->service_scale(), 2.0);
  EXPECT_THROW(link->set_service_scale(0.5), ParameterError);
  // 1000-byte packet at 8 Mbps = 1 ms unscaled; scaled -> 2 ms busy.
  Packet pkt = make_packet(0);
  pkt.dst = NodeId{0};  // addressed to the sink node so it absorbs it
  link->handle(pkt);
  EXPECT_TRUE(link->busy());
  sim.run_until(0.0015);
  EXPECT_TRUE(link->busy());  // still serializing at the residual rate
  sim.run_until(0.0025);
  EXPECT_FALSE(link->busy());
}

TEST(HybridBackendTest, RunsAndAccountsBackgroundGoodput) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = Backend::kHybrid;
  config.hybrid_foreground = 4;
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(10);
  const RunResult result = run_scenario(config, std::nullopt, control);
  // 4 packet flows + 11 fluid background classes.
  ASSERT_EQ(result.per_flow_goodput.size(), 15u);
  for (std::size_t i = 0; i < result.per_flow_goodput.size(); ++i) {
    EXPECT_GT(result.per_flow_goodput[i], 0u) << "flow " << i;
  }
  // The combined aggregate should keep the bottleneck busy, and the
  // background must carry real (not vestigial) load.
  EXPECT_GT(result.utilization, 0.75);
  EXPECT_LE(result.utilization, 1.02);
  Bytes background_bytes = 0;
  for (std::size_t i = 4; i < result.per_flow_goodput.size(); ++i) {
    background_bytes += result.per_flow_goodput[i];
  }
  EXPECT_GT(background_bytes, result.goodput_bytes / 4);
}

TEST(HybridBackendTest, AttackDegradesHybridGoodput) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = Backend::kHybrid;
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(10);
  ScenarioWorkspace workspace;
  const BitRate baseline = workspace.baseline(config, control);
  ASSERT_GT(baseline, 0.0);
  const PulseTrain train =
      PulseTrain::from_gamma(ms(50), mbps(25), 0.5, config.bottleneck);
  const GainMeasurement point =
      workspace.gain(config, train, 1.0, control, baseline);
  EXPECT_GT(point.degradation, 0.25);
  EXPECT_LT(point.degradation, 0.95);
}

TEST(HybridBackendTest, ValidateRejectsBadHybridConfigs) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = Backend::kHybrid;
  config.queue = QueueKind::kDropTail;
  EXPECT_THROW(config.validate(), ParameterError);
  config = ScenarioConfig::ns2_dumbbell(15);
  config.backend = Backend::kHybrid;
  config.hybrid_foreground = 15;  // nothing left for the background
  EXPECT_THROW(config.validate(), ParameterError);
  config.hybrid_foreground = 0;
  EXPECT_THROW(config.validate(), ParameterError);
}

TEST(BackendNamesTest, RoundTrip) {
  for (Backend b : {Backend::kFull, Backend::kFast, Backend::kFluid,
                    Backend::kHybrid}) {
    const auto parsed = parse_backend(backend_name(b));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(parse_backend("warp").has_value());
  EXPECT_FALSE(parse_backend("").has_value());
}

}  // namespace
}  // namespace pdos
