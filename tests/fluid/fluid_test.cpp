// Unit tests for the fluid AIMD solver (src/fluid/fluid.*): drop-curve
// shape, baseline behaviour, attack response, determinism, and the RTO
// freeze discontinuity.
#include "fluid/fluid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

#include "core/experiment.hpp"
#include "util/assert.hpp"

namespace pdos::fluid {
namespace {

FluidConfig dumbbell_config(int flows) {
  return make_fluid_config(ScenarioConfig::ns2_dumbbell(flows));
}

TEST(RedDropProbabilityTest, FollowsTheGentleRamp) {
  RedParams p = RedParams::paper_testbed(100);  // min 20, max 80
  EXPECT_EQ(red_drop_probability(p, 0.0), 0.0);
  EXPECT_EQ(red_drop_probability(p, 19.9), 0.0);
  // Mid-ramp: pb = max_p/2, spread expectation 2pb/(1+pb).
  const double pb = 0.5 * p.max_p;
  EXPECT_NEAR(red_drop_probability(p, 50.0), 2.0 * pb / (1.0 + pb), 1e-12);
  // Gentle region ramps from max_p at max_th to 1 at 2*max_th.
  const double mid_gentle = p.max_p + (1.0 - p.max_p) * 0.5;
  EXPECT_NEAR(red_drop_probability(p, 120.0),
              2.0 * mid_gentle / (1.0 + mid_gentle), 1e-12);
  EXPECT_EQ(red_drop_probability(p, 160.0), 1.0);
  EXPECT_EQ(red_drop_probability(p, 400.0), 1.0);
}

TEST(RedDropProbabilityTest, MonotoneInAvg) {
  RedParams p = RedParams::paper_testbed(240);
  double prev = -1.0;
  for (double avg = 0.0; avg <= 2.2 * p.max_th; avg += 1.0) {
    const double drop = red_drop_probability(p, avg);
    EXPECT_GE(drop, prev) << "avg=" << avg;
    EXPECT_GE(drop, 0.0);
    EXPECT_LE(drop, 1.0);
    prev = drop;
  }
}

TEST(FluidSolveTest, BaselineFillsTheBottleneck) {
  FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  const FluidResult r = solve(dumbbell_config(15), std::nullopt, control);
  // A 15-flow NewReno aggregate keeps a 15 Mbps RED bottleneck above 90%
  // utilization (Lemma 1's premise; the packet path measures ~95%).
  EXPECT_GT(r.utilization, 0.90);
  EXPECT_LE(r.utilization, 1.0 + 1e-9);
  EXPECT_EQ(r.per_class_goodput_bytes.size(), 15u);
  for (double bytes : r.per_class_goodput_bytes) EXPECT_GT(bytes, 0.0);
  EXPECT_GT(r.steps, 0u);
  EXPECT_TRUE(r.attack_bins.empty() ||
              *std::max_element(r.attack_bins.begin(), r.attack_bins.end()) ==
                  0.0);
}

TEST(FluidSolveTest, PulsingAttackDegradesGoodput) {
  FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  const FluidConfig config = dumbbell_config(15);
  const FluidResult base = solve(config, std::nullopt, control);
  FluidAttack attack;  // gamma = 0.5 at T_extent = 50 ms, R_attack = 25 Mbps
  attack.textent = ms(50);
  attack.rattack = mbps(25);
  attack.tspace = ms(116.667);
  const FluidResult hit = solve(config, attack, control);
  EXPECT_LT(hit.goodput_rate, 0.75 * base.goodput_rate);
  EXPECT_GT(hit.goodput_rate, 0.0);
  // The attack shows up in the series and the loss accounting.
  EXPECT_GT(*std::max_element(hit.attack_bins.begin(), hit.attack_bins.end()),
            0.0);
  EXPECT_GT(hit.early_dropped_packets + hit.forced_dropped_packets, 0.0);
  EXPECT_GT(hit.loss_events + hit.timeouts, 0u);
}

TEST(FluidSolveTest, DeterministicBitForBit) {
  FluidControl control;
  control.warmup = sec(2);
  control.measure = sec(6);
  FluidAttack attack;
  attack.tspace = ms(450);
  const FluidConfig config = dumbbell_config(25);
  const FluidResult a = solve(config, attack, control);
  const FluidResult b = solve(config, attack, control);
  EXPECT_EQ(a.goodput_bytes, b.goodput_bytes);
  EXPECT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.queue_occupancy.size(), b.queue_occupancy.size());
  for (std::size_t i = 0; i < a.queue_occupancy.size(); ++i) {
    EXPECT_EQ(a.queue_occupancy[i], b.queue_occupancy[i]) << i;
  }
  ASSERT_EQ(a.red_avg_samples.size(), b.red_avg_samples.size());
  for (std::size_t i = 0; i < a.red_avg_samples.size(); ++i) {
    EXPECT_EQ(a.red_avg_samples[i], b.red_avg_samples[i]) << i;
  }
}

TEST(FluidSolveTest, SevereAttackTriggersRtoFreezes) {
  FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  FluidAttack attack;  // near-flooding: long pulses, short gaps
  attack.textent = ms(200);
  attack.rattack = mbps(25);
  attack.tspace = ms(100);
  const FluidResult r = solve(dumbbell_config(15), attack, control);
  EXPECT_GT(r.timeouts, 0u);
  EXPECT_LT(r.utilization, 0.5);
}

TEST(FluidSolveTest, TracedClassRecordsWindowTrajectory) {
  FluidControl control;
  control.warmup = sec(1);
  control.measure = sec(3);
  control.traced_class = 0;
  const FluidResult r = solve(dumbbell_config(15), std::nullopt, control);
  ASSERT_FALSE(r.cwnd_trace.empty());
  double prev_t = -1.0;
  for (const auto& [t, w] : r.cwnd_trace) {
    EXPECT_GT(t, prev_t);
    EXPECT_GT(w, 0.0);
    prev_t = t;
  }
}

TEST(FluidSolveTest, BinsCoverTheWholeRun) {
  FluidControl control;
  control.warmup = sec(1);
  control.measure = sec(2);
  control.bin_width = ms(100);
  const FluidResult r = solve(dumbbell_config(15), std::nullopt, control);
  // 3 s at 100 ms bins: 30 bins, 31 boundary samples (t = 0 included).
  EXPECT_EQ(r.incoming_bins.size(), 30u);
  EXPECT_EQ(r.attack_bins.size(), 30u);
  EXPECT_EQ(r.queue_occupancy.size(), r.red_avg_samples.size());
  EXPECT_GE(r.queue_occupancy.size(), 30u);
}

TEST(BinClassesTest, EqualRttsMergeExactly) {
  // The testbed scenario gives every flow the same RTT: binning must
  // collapse it to ONE class carrying the whole population, at any budget.
  FluidConfig config = make_fluid_config(ScenarioConfig::testbed(10));
  const auto binned = bin_classes(config.classes, 4);
  ASSERT_EQ(binned.size(), 1u);
  EXPECT_EQ(binned[0].rtt, config.classes[0].rtt);
  EXPECT_EQ(binned[0].count, 10.0);
}

TEST(BinClassesTest, PreservesPopulationAndRttRange) {
  FluidConfig config = dumbbell_config(45);  // 45 distinct RTTs
  const auto binned = bin_classes(config.classes, 8);
  ASSERT_LE(binned.size(), 8u);
  ASSERT_GE(binned.size(), 2u);
  double total = 0.0;
  Time prev = 0.0;
  for (const FluidClass& c : binned) {
    EXPECT_GT(c.rtt, prev) << "output sorted, strictly distinct";
    prev = c.rtt;
    total += c.count;
  }
  EXPECT_DOUBLE_EQ(total, 45.0);
  EXPECT_GE(binned.front().rtt, config.classes.front().rtt);
  EXPECT_LE(binned.back().rtt, config.classes.back().rtt);
}

TEST(BinClassesTest, NoOpWhenUnderBudget) {
  FluidConfig config = dumbbell_config(15);
  const auto binned = bin_classes(config.classes, 15);
  ASSERT_EQ(binned.size(), 15u);
  for (std::size_t i = 0; i < binned.size(); ++i) {
    EXPECT_EQ(binned[i].rtt, config.classes[i].rtt);
    EXPECT_EQ(binned[i].count, config.classes[i].count);
  }
}

TEST(BinClassesTest, ExactCountMassPropertyOverRandomPopulations) {
  // Binning must preserve total flow count EXACTLY, not just to rounding:
  // integer counts sum without error below 2^53, and bin_classes uses
  // compensated accumulation so the output mass is the same integer. A
  // drifting Σcount would silently rescale goodput in every binned-1e6
  // fluid run. Fixed seed — failures reproduce.
  std::mt19937_64 rng(0xb1c1a55e5ull);
  std::uniform_int_distribution<int> n_classes(1, 5000);
  std::uniform_int_distribution<int> max_count(1, 4000);
  std::uniform_real_distribution<double> rtt_ms_dist(10.0, 800.0);
  std::uniform_int_distribution<int> budget_dist(1, 64);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = n_classes(rng);
    std::uniform_int_distribution<int> count_dist(1, max_count(rng));
    std::vector<FluidClass> classes;
    classes.reserve(static_cast<std::size_t>(n));
    double total_in = 0.0;
    for (int i = 0; i < n; ++i) {
      // A few duplicated RTTs per population exercises the exact-merge
      // path alongside quantization.
      const double rtt = (i % 7 == 0 && i > 0)
                             ? classes[static_cast<std::size_t>(i - 1)].rtt
                             : ms(rtt_ms_dist(rng));
      const double count = static_cast<double>(count_dist(rng));
      classes.push_back(FluidClass{rtt, count});
      total_in += count;  // integers: this sum is itself exact
    }
    const auto binned = bin_classes(classes, budget_dist(rng));
    double total_out = 0.0;
    double comp = 0.0;  // Neumaier, same as the implementation
    for (const FluidClass& c : binned) {
      const double t = total_out + c.count;
      comp += (std::abs(total_out) >= std::abs(c.count))
                  ? (total_out - t) + c.count
                  : (c.count - t) + total_out;
      total_out = t;
    }
    SCOPED_TRACE(testing::Message()
                 << "trial " << trial << " classes " << n << " total "
                 << total_in << " binned to " << binned.size());
    EXPECT_EQ(total_out + comp, total_in);
  }
}

TEST(BinClassesTest, BinnedSolveTracksUnbinnedWithinTolerance) {
  // The fig. 6 quick point (γ = 0.5, T_extent 50 ms, R_attack 25 Mbps) on
  // 45 per-flow classes vs the same population binned to 8: the binned
  // run quantizes RTTs by at most one bin width, so its degradation must
  // stay within the fluid tier's own per-point agreement band.
  FluidControl control;
  control.warmup = sec(5);
  control.measure = sec(15);
  FluidAttack attack;
  attack.textent = ms(50);
  attack.rattack = mbps(25);
  attack.tspace = ms(116.667);
  const FluidConfig config = dumbbell_config(45);
  FluidConfig binned_config = config;
  binned_config.classes = bin_classes(config.classes, 8);
  ASSERT_LE(binned_config.classes.size(), 8u);

  const FluidResult base = solve(config, std::nullopt, control);
  const FluidResult hit = solve(config, attack, control);
  const FluidResult binned_base = solve(binned_config, std::nullopt, control);
  const FluidResult binned_hit = solve(binned_config, attack, control);

  const double gamma_full = 1.0 - hit.goodput_rate / base.goodput_rate;
  const double gamma_binned =
      1.0 - binned_hit.goodput_rate / binned_base.goodput_rate;
  EXPECT_NEAR(gamma_binned, gamma_full, kDegradationAbsTol);
  // Baseline utilization barely depends on the RTT fine structure.
  EXPECT_NEAR(binned_base.utilization, base.utilization, 0.05);
}

TEST(FluidConfigTest, ValidateRejectsNonsense) {
  FluidConfig config = dumbbell_config(15);
  config.classes.clear();
  EXPECT_THROW(config.validate(), ParameterError);
  config = dumbbell_config(15);
  config.dt_pulse = 0.0;
  EXPECT_THROW(config.validate(), ParameterError);
  config = dumbbell_config(15);
  config.bottleneck = 0.0;
  EXPECT_THROW(config.validate(), ParameterError);
}

TEST(AimdBankTest, WindowsGrowWithoutLossAndHalveUnderPressure) {
  FluidConfig config = dumbbell_config(15);
  AimdBank bank(config);
  ASSERT_EQ(bank.size(), 15u);
  const double w0 = bank.window(0);
  // One clean second: slow-start growth, no episodes.
  Time now = 0.0;
  for (int i = 0; i < 1000; ++i, now += 0.001) {
    bank.step(now, 0.001, 0.0, 0.0, 0.0);
  }
  EXPECT_GT(bank.window(0), w0);
  EXPECT_EQ(bank.loss_events, 0u);
  const double w_grown = bank.window(0);
  // Heavy loss probability: pressure accumulates, an episode fires.
  for (int i = 0; i < 2000; ++i, now += 0.001) {
    bank.step(now, 0.001, 0.9, 0.0, 0.0);
  }
  EXPECT_GT(bank.loss_events + bank.timeouts, 0u);
  EXPECT_LT(bank.window(0), w_grown);
}

}  // namespace
}  // namespace pdos::fluid
