// Fluid-vs-packet agreement on the figure grids.
//
// The fluid tier is only useful as an optimizer surrogate if its Γ(γ)
// surface tracks the packet engine's. This suite runs the fig. 6 quick-mode
// grid (the golden-digest spec: 15-45 flows, T_extent 50-100 ms, R_attack
// 25 Mbps, 7-point auto-γ grids) and a fig. 7-9-style grid (R_attack
// 30-40 Mbps axes at fixed T_extent, the other figures' sweep direction) on
// BOTH backends and enforces the committed tolerances
// (fluid::kDegradationAbsTol / kDegradationMeanTol) per point and per grid.
// Tightening the solver is welcome; loosening the bounds is a red flag.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "fluid/fluid.hpp"
#include "sweep/sweep.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

/// Run `spec` on the packet and fluid tiers and compare per-point Γ.
void expect_agreement(sweep::SweepSpec spec, const char* grid_name) {
  sweep::SweepOptions options;
  options.threads = 1;

  spec.backend = Backend::kFull;
  const sweep::SweepResult packet = sweep::run_sweep(spec, options);
  ASSERT_EQ(packet.failures(), 0u) << grid_name;

  spec.backend = Backend::kFluid;
  const sweep::SweepResult fluid = sweep::run_sweep(spec, options);
  ASSERT_EQ(fluid.failures(), 0u) << grid_name;

  ASSERT_EQ(packet.points.size(), fluid.points.size()) << grid_name;
  double max_err = 0.0;
  double sum_err = 0.0;
  std::size_t compared = 0;
  for (std::size_t i = 0; i < packet.points.size(); ++i) {
    const auto& p = packet.points[i];
    const auto& f = fluid.points[i];
    if (p.status != sweep::PointStatus::kOk) continue;
    ASSERT_EQ(f.status, sweep::PointStatus::kOk) << grid_name << " #" << i;
    ASSERT_DOUBLE_EQ(p.point.gamma, f.point.gamma) << grid_name << " #" << i;
    const double err =
        std::abs(f.measured_degradation - p.measured_degradation);
    EXPECT_LE(err, fluid::kDegradationAbsTol)
        << grid_name << " point " << i << ": flows=" << p.point.flows
        << " textent=" << p.point.textent << " rattack=" << p.point.rattack
        << " gamma=" << p.point.gamma
        << " Gamma_packet=" << p.measured_degradation
        << " Gamma_fluid=" << f.measured_degradation;
    max_err = std::max(max_err, err);
    sum_err += err;
    ++compared;
  }
  ASSERT_GT(compared, 0u) << grid_name;
  const double mean_err = sum_err / static_cast<double>(compared);
  EXPECT_LE(mean_err, fluid::kDegradationMeanTol) << grid_name;
  std::printf("[agreement] %s: %zu points, |dGamma| max %.3f mean %.3f\n",
              grid_name, compared, max_err, mean_err);
}

TEST(FluidAgreementTest, Fig06QuickGridWithinCommittedTolerance) {
  sweep::SweepSpec spec;  // the golden-digest fig. 6 quick-mode grid
  spec.flow_counts = {15, 25, 35, 45};
  spec.textents = {ms(50), ms(75), ms(100)};
  spec.rattacks = {mbps(25)};
  spec.gamma_points = 7;
  spec.control.warmup = sec(5);
  spec.control.measure = sec(15);
  expect_agreement(spec, "fig06-quick");
}

TEST(FluidAgreementTest, Fig07To09StyleGridWithinCommittedTolerance) {
  // Figs. 7-9 sweep the attack-rate axis and the per-figure flow counts at
  // the same dumbbell; this quick slice covers the 30-40 Mbps rates the
  // fig. 6 grid above does not touch.
  sweep::SweepSpec spec;
  spec.flow_counts = {15, 35};
  spec.textents = {ms(50), ms(100)};
  spec.rattacks = {mbps(30), mbps(40)};
  spec.gamma_points = 5;
  spec.control.warmup = sec(5);
  spec.control.measure = sec(15);
  expect_agreement(spec, "fig07-09-quick");
}

}  // namespace
}  // namespace pdos
