// Bit-identity tests for the lane-batched fluid solver (src/fluid/batch.*):
// solve_batch must reproduce point-at-a-time fluid::solve exactly — not
// approximately — for every lane, on every SIMD backend, including lanes
// that hit the RTO/dupack-floor masked branches and pad lanes/tails. This
// is the determinism contract of DESIGN.md §16: the batched path may only
// ever change *when* arithmetic runs, never *what* arithmetic runs.
#include "fluid/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <vector>

#include "core/experiment.hpp"
#include "fluid/fluid.hpp"

namespace pdos::fluid {
namespace {

FluidConfig dumbbell_config(int flows) {
  return make_fluid_config(ScenarioConfig::ns2_dumbbell(flows));
}

FluidControl quick_control() {
  FluidControl control;
  control.warmup = sec(2);
  control.measure = sec(6);
  return control;
}

// FluidAttack at duty cycle gamma: tspace = textent * (1 - gamma) / gamma.
FluidAttack attack_at(Time textent, BitRate rattack, double gamma) {
  FluidAttack attack;
  attack.textent = textent;
  attack.rattack = rattack;
  attack.tspace = textent * (1.0 - gamma) / gamma;
  return attack;
}

void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b, const char* what,
                       std::size_t lane) {
  ASSERT_EQ(a.size(), b.size()) << what << " lane " << lane;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // EXPECT_EQ on doubles is exact; a failure prints the values, and the
    // hex dump in the message pins down sub-ulp drift.
    EXPECT_EQ(a[i], b[i]) << what << "[" << i << "] lane " << lane;
  }
}

void expect_result_bits_equal(const FluidResult& batch,
                              const FluidResult& single, std::size_t lane) {
  EXPECT_EQ(batch.goodput_bytes, single.goodput_bytes) << "lane " << lane;
  EXPECT_EQ(batch.goodput_rate, single.goodput_rate) << "lane " << lane;
  EXPECT_EQ(batch.utilization, single.utilization) << "lane " << lane;
  expect_bits_equal(batch.per_class_goodput_bytes,
                    single.per_class_goodput_bytes, "per_class", lane);
  expect_bits_equal(batch.incoming_bins, single.incoming_bins,
                    "incoming_bins", lane);
  expect_bits_equal(batch.attack_bins, single.attack_bins, "attack_bins",
                    lane);
  expect_bits_equal(batch.queue_occupancy, single.queue_occupancy,
                    "queue_occupancy", lane);
  expect_bits_equal(batch.red_avg_samples, single.red_avg_samples,
                    "red_avg_samples", lane);
  EXPECT_EQ(batch.bin_width, single.bin_width) << "lane " << lane;
  EXPECT_EQ(batch.early_dropped_packets, single.early_dropped_packets)
      << "lane " << lane;
  EXPECT_EQ(batch.forced_dropped_packets, single.forced_dropped_packets)
      << "lane " << lane;
  EXPECT_EQ(batch.loss_events, single.loss_events) << "lane " << lane;
  EXPECT_EQ(batch.timeouts, single.timeouts) << "lane " << lane;
  EXPECT_EQ(batch.steps, single.steps) << "lane " << lane;
  ASSERT_EQ(batch.cwnd_trace.size(), single.cwnd_trace.size())
      << "lane " << lane;
  for (std::size_t i = 0; i < batch.cwnd_trace.size(); ++i) {
    EXPECT_EQ(batch.cwnd_trace[i].first, single.cwnd_trace[i].first)
        << "lane " << lane;
    EXPECT_EQ(batch.cwnd_trace[i].second, single.cwnd_trace[i].second)
        << "lane " << lane;
  }
}

void expect_batch_matches_single(const FluidConfig& config,
                                 const std::vector<BatchLane>& lanes,
                                 const FluidControl& control) {
  const std::vector<FluidResult> batch = solve_batch(config, lanes, control);
  ASSERT_EQ(batch.size(), lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    const FluidResult single = solve(config, lanes[l].attack, control);
    expect_result_bits_equal(batch[l], single, l);
  }
}

TEST(SolveBatchTest, GammaGridLanesMatchSinglePointBitForBit) {
  const FluidConfig config = dumbbell_config(15);
  std::vector<BatchLane> lanes;
  for (double gamma : {0.15, 0.3, 0.45, 0.6, 0.75, 0.85, 0.9, 0.95}) {
    lanes.push_back({attack_at(ms(50), mbps(25), gamma)});
  }
  expect_batch_matches_single(config, lanes, quick_control());
}

TEST(SolveBatchTest, BaselineAndAttackLanesMix) {
  const FluidConfig config = dumbbell_config(9);
  std::vector<BatchLane> lanes;
  lanes.push_back({std::nullopt});  // unattacked baseline lane
  lanes.push_back({attack_at(ms(50), mbps(25), 0.5)});
  lanes.push_back({std::nullopt});
  lanes.push_back({attack_at(ms(100), mbps(40), 0.8)});
  expect_batch_matches_single(config, lanes, quick_control());
}

TEST(SolveBatchTest, PaddedTailWidthsMatch) {
  // Widths that exercise every pad-tail residue (1..5 mod 4), including
  // the W=1 degenerate batch.
  const FluidConfig config = dumbbell_config(7);
  const FluidControl control = quick_control();
  for (std::size_t width : {1u, 2u, 3u, 5u, 6u}) {
    std::vector<BatchLane> lanes;
    for (std::size_t l = 0; l < width; ++l) {
      const double gamma = 0.2 + 0.1 * static_cast<double>(l);
      lanes.push_back({attack_at(ms(50), mbps(25), gamma)});
    }
    expect_batch_matches_single(config, lanes, control);
  }
}

TEST(SolveBatchTest, GridNotMultipleOfBatchWidthChunks) {
  // Caller-side chunking shape: a 10-point γ grid evaluated in W=4
  // chunks leaves a ragged 2-lane tail; every chunk must still match the
  // single-point results.
  const FluidConfig config = dumbbell_config(15);
  const FluidControl control = quick_control();
  std::vector<BatchLane> grid;
  for (int i = 0; i < 10; ++i) {
    grid.push_back(
        {attack_at(ms(50), mbps(25), 0.08 + 0.09 * static_cast<double>(i))});
  }
  for (std::size_t start = 0; start < grid.size(); start += 4) {
    const std::size_t stop = std::min(grid.size(), start + 4);
    const std::vector<BatchLane> chunk(grid.begin() + start,
                                       grid.begin() + stop);
    expect_batch_matches_single(config, chunk, control);
  }
}

TEST(SolveBatchTest, RtoAndDupackFloorBranchesCovered) {
  // A severe wide pulse drives windows below the dupack floor: the
  // single-point solver takes RTO freezes here (fluid_test pins that).
  // Mixing severe and mild lanes makes frozen and growing lanes share
  // SIMD chunks, exercising the masked branches both ways.
  const FluidConfig config = dumbbell_config(15);
  FluidAttack severe;
  severe.textent = ms(200);
  severe.rattack = mbps(40);
  severe.tspace = ms(100);
  std::vector<BatchLane> lanes;
  lanes.push_back({severe});
  lanes.push_back({attack_at(ms(50), mbps(25), 0.3)});
  lanes.push_back({severe});
  lanes.push_back({std::nullopt});
  lanes.push_back({attack_at(ms(20), mbps(25), 0.9)});
  const std::vector<FluidResult> batch =
      solve_batch(config, lanes, quick_control());
  EXPECT_GT(batch[0].timeouts, 0u)
      << "severe lane must actually hit the RTO branch for this test to "
         "cover it";
  expect_batch_matches_single(config, lanes, quick_control());
}

TEST(SolveBatchTest, RandomizedLanesPropertyTest) {
  // Property: for random topologies (class count, RTT mix, flow counts)
  // and random per-lane (γ, T_extent, R_attack) plans, batched results
  // are bit-identical to single-point solves. Seeds are fixed — failures
  // reproduce.
  std::mt19937_64 rng(0x9e3779b97f4a7c15ull);
  std::uniform_int_distribution<int> n_classes(3, 17);
  std::uniform_int_distribution<int> n_lanes(1, 9);
  std::uniform_real_distribution<double> rtt_ms(20.0, 460.0);
  std::uniform_int_distribution<int> flows(1, 40);
  std::uniform_real_distribution<double> gamma(0.1, 0.95);
  std::uniform_real_distribution<double> textent_ms(15.0, 220.0);
  std::uniform_real_distribution<double> rattack_mbps(18.0, 45.0);
  std::uniform_int_distribution<int> coin(0, 4);

  FluidControl control;
  control.warmup = sec(1);
  control.measure = sec(4);

  for (int trial = 0; trial < 8; ++trial) {
    FluidConfig config = dumbbell_config(15);
    config.classes.clear();
    const int n = n_classes(rng);
    for (int i = 0; i < n; ++i) {
      config.classes.push_back(
          FluidClass{ms(rtt_ms(rng)), static_cast<double>(flows(rng))});
    }
    std::vector<BatchLane> lanes;
    const int width = n_lanes(rng);
    for (int l = 0; l < width; ++l) {
      if (coin(rng) == 0) {
        lanes.push_back({std::nullopt});
      } else {
        lanes.push_back(
            {attack_at(ms(textent_ms(rng)), mbps(rattack_mbps(rng)),
                       gamma(rng))});
      }
    }
    SCOPED_TRACE(testing::Message() << "trial " << trial << " classes " << n
                                    << " width " << width);
    expect_batch_matches_single(config, lanes, control);
  }
}

TEST(SolveBatchTest, TracedClassLaneMatches) {
  const FluidConfig config = dumbbell_config(5);
  FluidControl control = quick_control();
  control.traced_class = 2;
  std::vector<BatchLane> lanes;
  lanes.push_back({attack_at(ms(50), mbps(25), 0.5)});
  lanes.push_back({std::nullopt});
  expect_batch_matches_single(config, lanes, control);
}

TEST(SolveBatchTest, DeterministicAcrossCalls) {
  const FluidConfig config = dumbbell_config(15);
  std::vector<BatchLane> lanes;
  for (double gamma : {0.2, 0.5, 0.8}) {
    lanes.push_back({attack_at(ms(50), mbps(25), gamma)});
  }
  const auto a = solve_batch(config, lanes, quick_control());
  const auto b = solve_batch(config, lanes, quick_control());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    expect_result_bits_equal(a[l], b[l], l);
  }
}

TEST(SolveBatchTest, ReportsCompiledBackend) {
  // Not an assertion on which backend — just that the query is wired and
  // returns one of the three contracted names (CI runs both a SIMD and a
  // PDOS_SIMD=OFF scalar build of this test).
  const std::string backend = simd_backend();
  EXPECT_TRUE(backend == "avx2" || backend == "neon" || backend == "scalar")
      << backend;
}

}  // namespace
}  // namespace pdos::fluid
