#include "net/node.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace pdos {
namespace {

class CollectingHandler : public PacketHandler {
 public:
  void handle(Packet pkt) override { packets.push_back(std::move(pkt)); }
  std::vector<Packet> packets;
};

Packet addressed(NodeId dst, FlowId flow = 0) {
  Packet pkt;
  pkt.dst = dst;
  pkt.flow = flow;
  pkt.size_bytes = 100;
  return pkt;
}

TEST(NodeTest, PeekRouteMirrorsForwardingWithoutTouchingPackets) {
  Node node(1, "n1");
  CollectingHandler explicit_hop;
  CollectingHandler fallback_hop;
  node.add_route(7, &explicit_hop);
  node.set_default_route(&fallback_hop);
  EXPECT_EQ(node.peek_route(7), &explicit_hop);
  EXPECT_EQ(node.peek_route(9), &fallback_hop);    // beyond the table
  EXPECT_EQ(node.peek_route(0), &fallback_hop);    // in-table gap
  EXPECT_EQ(node.peek_route(1), nullptr);          // self: local delivery
  EXPECT_TRUE(explicit_hop.packets.empty());       // peek forwards nothing
}

TEST(NodeTest, ForwardsViaRouteTable) {
  Node node(1, "n1");
  CollectingHandler next_hop;
  node.add_route(7, &next_hop);
  node.handle(addressed(7));
  EXPECT_EQ(next_hop.packets.size(), 1u);
}

TEST(NodeTest, DefaultRouteCatchesUnknownDestinations) {
  Node node(1, "n1");
  CollectingHandler explicit_hop;
  CollectingHandler fallback;
  node.add_route(7, &explicit_hop);
  node.set_default_route(&fallback);
  node.handle(addressed(7));
  node.handle(addressed(99));
  EXPECT_EQ(explicit_hop.packets.size(), 1u);
  EXPECT_EQ(fallback.packets.size(), 1u);
}

TEST(NodeTest, NoRouteIsAnInvariantViolation) {
  Node node(1, "n1");
  EXPECT_THROW(node.handle(addressed(9)), InvariantError);
}

TEST(NodeTest, LocalDeliveryDemuxesByFlow) {
  Node node(5, "n5");
  CollectingHandler agent_a;
  CollectingHandler agent_b;
  node.attach(10, &agent_a);
  node.attach(11, &agent_b);
  node.handle(addressed(5, 10));
  node.handle(addressed(5, 11));
  node.handle(addressed(5, 10));
  EXPECT_EQ(agent_a.packets.size(), 2u);
  EXPECT_EQ(agent_b.packets.size(), 1u);
}

TEST(NodeTest, UnmatchedLocalDeliveryIsSunkAndCounted) {
  Node node(5, "n5");
  node.handle(addressed(5, 42));
  node.handle(addressed(5, 42));
  EXPECT_EQ(node.sink_packets(), 2u);
  EXPECT_EQ(node.sink_bytes(), 200);
}

TEST(NodeTest, DetachStopsDelivery) {
  Node node(5, "n5");
  CollectingHandler agent;
  node.attach(10, &agent);
  node.handle(addressed(5, 10));
  node.detach(10);
  node.handle(addressed(5, 10));
  EXPECT_EQ(agent.packets.size(), 1u);
  EXPECT_EQ(node.sink_packets(), 1u);
}

TEST(NodeTest, DoubleAttachSameFlowThrows) {
  Node node(5, "n5");
  CollectingHandler agent;
  node.attach(10, &agent);
  EXPECT_THROW(node.attach(10, &agent), InvariantError);
}

TEST(NodeTest, NullRouteOrAgentRejected) {
  Node node(1, "n1");
  EXPECT_THROW(node.add_route(2, nullptr), ParameterError);
  EXPECT_THROW(node.attach(3, nullptr), ParameterError);
}

TEST(NodeTest, IdentityAccessors) {
  Node node(9, "router");
  EXPECT_EQ(node.id(), 9);
  EXPECT_EQ(node.name(), "router");
}

}  // namespace
}  // namespace pdos
