#include "net/link.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/droptail.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

/// Records every packet it receives together with the arrival time.
class RecordingSink : public PacketHandler {
 public:
  explicit RecordingSink(Simulator& sim) : sim_(sim) {}
  void handle(Packet pkt) override {
    times.push_back(sim_.now());
    packets.push_back(std::move(pkt));
  }
  std::vector<Time> times;
  std::vector<Packet> packets;

 private:
  Simulator& sim_;
};

Packet make_packet(Bytes size, std::int64_t seq = 0) {
  Packet pkt;
  pkt.size_bytes = size;
  pkt.seq = seq;
  return pkt;
}

TEST(LinkTest, DeliversAfterSerializationPlusPropagation) {
  Simulator sim;
  RecordingSink sink(sim);
  // 1000 bytes at 8 kbps -> 1 s serialization; +0.5 s propagation.
  Link link(sim, "l", kbps(8), sec(0.5), std::make_unique<DropTailQueue>(10),
            &sink);
  link.handle(make_packet(1000));
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_NEAR(sink.times[0], 1.5, 1e-9);
}

TEST(LinkTest, BackToBackPacketsSerializeSequentially) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(10),
            &sink);
  link.handle(make_packet(1000, 0));
  link.handle(make_packet(1000, 1));
  link.handle(make_packet(1000, 2));
  sim.run();
  ASSERT_EQ(sink.times.size(), 3u);
  EXPECT_NEAR(sink.times[0], 1.0, 1e-9);
  EXPECT_NEAR(sink.times[1], 2.0, 1e-9);
  EXPECT_NEAR(sink.times[2], 3.0, 1e-9);
  EXPECT_EQ(sink.packets[0].seq, 0);
  EXPECT_EQ(sink.packets[2].seq, 2);
}

TEST(LinkTest, PropagationIsPipelined) {
  // With a long propagation delay, the second packet must not wait for the
  // first packet's propagation, only for its serialization.
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), sec(10), std::make_unique<DropTailQueue>(10),
            &sink);
  link.handle(make_packet(1000, 0));
  link.handle(make_packet(1000, 1));
  sim.run();
  ASSERT_EQ(sink.times.size(), 2u);
  EXPECT_NEAR(sink.times[0], 11.0, 1e-9);
  EXPECT_NEAR(sink.times[1], 12.0, 1e-9);  // not 22.0
}

TEST(LinkTest, QueueOverflowDrops) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(2),
            &sink);
  // First packet goes into service immediately; two buffer slots remain.
  for (int i = 0; i < 5; ++i) link.handle(make_packet(1000, i));
  sim.run();
  EXPECT_EQ(sink.packets.size(), 3u);
  EXPECT_EQ(link.queue().stats().dropped, 2u);
}

TEST(LinkTest, ArrivalTapSeesDroppedPacketsToo) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(1),
            &sink);
  int arrivals = 0;
  link.add_arrival_tap([&](const Packet&) { ++arrivals; });
  for (int i = 0; i < 4; ++i) link.handle(make_packet(1000, i));
  sim.run();
  EXPECT_EQ(arrivals, 4);
  EXPECT_EQ(sink.packets.size(), 2u);
}

TEST(LinkTest, DepartureTapCountsOnlyTransmitted) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(1),
            &sink);
  int departures = 0;
  link.add_departure_tap([&](const Packet&) { ++departures; });
  for (int i = 0; i < 4; ++i) link.handle(make_packet(1000, i));
  sim.run();
  EXPECT_EQ(departures, 2);
}

TEST(LinkTest, IdleLinkResumesAfterDrain) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(10),
            &sink);
  link.handle(make_packet(1000));
  sim.run();
  EXPECT_FALSE(link.busy());
  link.handle(make_packet(1000));
  sim.run();
  EXPECT_EQ(sink.packets.size(), 2u);
  EXPECT_NEAR(sink.times[1], sink.times[0] + 1.0, 1e-9);
}

TEST(LinkTest, ThroughputMatchesRate) {
  // Saturate a 1 Mbps link for 1 second: ~125 kB should get through.
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", mbps(1), 0.0, std::make_unique<DropTailQueue>(10000),
            &sink);
  const Bytes pkt_size = 1250;  // 10 ms each
  for (int i = 0; i < 100; ++i) link.handle(make_packet(pkt_size, i));
  // 100 packets * 10 ms = 1 s of service; allow fp accumulation slack.
  sim.run_until(sec(1.0) + us(1));
  EXPECT_EQ(sink.packets.size(), 100u);
}

TEST(LinkTest, InvalidConstructionThrows) {
  Simulator sim;
  RecordingSink sink(sim);
  auto make_link = [&](BitRate rate, Time delay, bool with_queue,
                       PacketHandler* down) {
    Link link(sim, "l", rate, delay,
              with_queue ? std::make_unique<DropTailQueue>(1) : nullptr,
              down);
  };
  EXPECT_THROW(make_link(0.0, 0.0, true, &sink), ParameterError);
  EXPECT_THROW(make_link(kbps(8), -1.0, true, &sink), ParameterError);
  EXPECT_THROW(make_link(kbps(8), 0.0, false, &sink), ParameterError);
  EXPECT_THROW(make_link(kbps(8), 0.0, true, nullptr), ParameterError);
}

// ---- Express lane and event fusion (DESIGN.md §11) ----

TEST(LinkTest, ExpressLaneMatchesFullLinkDeliveryTimes) {
  // The express lane must deliver every packet at exactly the instant an
  // uncongested full link would: serialization chains FIFO off the previous
  // completion, then constant propagation.
  Simulator sim_full;
  RecordingSink full_sink(sim_full);
  Link full(sim_full, "full", kbps(8), sec(0.5),
            std::make_unique<DropTailQueue>(1000), &full_sink);

  Simulator sim_express;
  RecordingSink express_sink(sim_express);
  Link express(sim_express, "express", kbps(8), sec(0.5), &express_sink);
  EXPECT_TRUE(express.express());

  // A burst (queues behind the serializer), a gap, then a lone packet.
  for (auto pair :
       {std::pair<Simulator*, Link*>{&sim_full, &full},
        std::pair<Simulator*, Link*>{&sim_express, &express}}) {
    Simulator& sim = *pair.first;
    Link& link = *pair.second;
    sim.schedule_at(0.0, [&link] {
      link.handle(make_packet(1000, 0));
      link.handle(make_packet(1000, 1));
      link.handle(make_packet(500, 2));
    });
    sim.schedule_at(10.0, [&link] { link.handle(make_packet(1000, 3)); });
    sim.run();
  }

  ASSERT_EQ(full_sink.times.size(), 4u);
  ASSERT_EQ(express_sink.times.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(express_sink.times[i], full_sink.times[i]) << "packet " << i;
    EXPECT_EQ(express_sink.packets[i].seq, full_sink.packets[i].seq);
  }
  // And it must do so with fewer scheduler events: one delivery event per
  // pipeline burst, zero service events.
  EXPECT_LT(sim_express.scheduler().events_executed(),
            sim_full.scheduler().events_executed());
}

TEST(LinkTest, ExpressLaneRejectsTapsAndQueueAccess) {
  Simulator sim;
  RecordingSink sink(sim);
  Link express(sim, "express", kbps(8), sec(0.5), &sink);
  EXPECT_THROW(express.add_arrival_tap([](const Packet&) {}), ParameterError);
  EXPECT_THROW(express.add_departure_tap([](const Packet&) {}),
               ParameterError);
  EXPECT_THROW(express.queue(), ParameterError);
}

TEST(LinkTest, FusedLinkMatchesFullLinkTimingsAndDrops) {
  // Fusion collapses idle-link serves into zero service events but must
  // keep every delivery time and every queue decision identical — the
  // packets pass through the same enqueue/dequeue sequence either way.
  auto drive = [](bool fused, std::vector<Time>& times,
                  std::uint64_t& dropped, std::uint64_t& events) {
    Simulator sim;
    RecordingSink sink(sim);
    Link link(sim, "l", kbps(8), sec(0.25),
              std::make_unique<DropTailQueue>(2), &sink);
    link.set_fused(fused);
    // Saturating burst (forces drops + pump events), then idle singles
    // (the fused zero-service-event case).
    sim.schedule_at(0.0, [&link] {
      for (int i = 0; i < 6; ++i) link.handle(make_packet(1000, i));
    });
    for (int i = 0; i < 4; ++i) {
      sim.schedule_at(20.0 + 2.0 * i,
                      [&link, i] { link.handle(make_packet(1000, 100 + i)); });
    }
    sim.run();
    times = sink.times;
    dropped = link.queue().stats().dropped;
    events = sim.scheduler().events_executed();
  };

  std::vector<Time> full_times, fused_times;
  std::uint64_t full_dropped = 0, fused_dropped = 0;
  std::uint64_t full_events = 0, fused_events = 0;
  drive(false, full_times, full_dropped, full_events);
  drive(true, fused_times, fused_dropped, fused_events);

  EXPECT_EQ(fused_times, full_times);
  EXPECT_EQ(fused_dropped, full_dropped);
  EXPECT_LT(fused_events, full_events);
}

TEST(LinkTest, SettleReplaysLazyBacklogForSamplers) {
  // A lazy fused link owns no boundary event, so its queue state is stale
  // between packet visits; settle() replays the overdue services so a
  // sampler reads the exact occupancy an eager link would report.
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), sec(0.5), std::make_unique<DropTailQueue>(10),
            &sink);
  link.set_fused(true);
  // Five 1 s services back to back: boundaries at 1, 2, 3, 4 s.
  sim.schedule_at(0.0, [&link] {
    for (int i = 0; i < 5; ++i) link.handle(make_packet(1000, i));
  });
  std::size_t sampled = 99;
  sim.schedule_at(2.25, [&link, &sampled] {
    link.settle();
    sampled = link.queue().length();
  });
  sim.run();
  // By 2.25 s the t=0, 1 s, and 2 s services have started, leaving two
  // packets queued — exactly what the full path's sampler would see.
  EXPECT_EQ(sampled, 2u);
  ASSERT_EQ(sink.times.size(), 5u);
  EXPECT_NEAR(sink.times.back(), 5.5, 1e-9);
}

TEST(LinkTest, ChainHandoffMatchesTwoHopExpressTimings) {
  // bottleneck_rev -> routerS -> per-flow reverse lane, in miniature: the
  // chained variant must deliver every packet at the same instant as the
  // event-driven two-hop reference while executing fewer events.
  auto drive = [](bool chained, std::vector<Time>& times,
                  std::uint64_t& events) {
    Simulator sim;
    RecordingSink sink(sim);
    Node router(7, "router");
    Link second(sim, "second", kbps(16), sec(0.25),
                static_cast<PacketHandler*>(&sink));
    router.add_route(5, &second);
    Link first(sim, "first", kbps(8), sec(0.5),
               static_cast<PacketHandler*>(&router));
    if (chained) first.chain_via(&router);
    sim.schedule_at(0.0, [&first] {
      for (int i = 0; i < 3; ++i) {
        Packet pkt = make_packet(1000, i);
        pkt.dst = 5;
        first.handle(std::move(pkt));
      }
    });
    sim.run();
    times = sink.times;
    events = sim.scheduler().events_executed();
  };

  std::vector<Time> ref_times, chained_times;
  std::uint64_t ref_events = 0, chained_events = 0;
  drive(false, ref_times, ref_events);
  drive(true, chained_times, chained_events);

  ASSERT_EQ(ref_times.size(), 3u);
  EXPECT_EQ(chained_times, ref_times);
  // The first hop stops owning delivery events entirely.
  EXPECT_LT(chained_events, ref_events);
}

TEST(LinkTest, ChainHandoffRequiresExpressEndpoints) {
  Simulator sim;
  RecordingSink sink(sim);
  Node router(7, "router");
  Link queued(sim, "queued", kbps(8), sec(0.5),
              std::make_unique<DropTailQueue>(10), &sink);
  EXPECT_THROW(queued.chain_via(&router), ParameterError);

  Link express(sim, "express", kbps(8), sec(0.5),
               static_cast<PacketHandler*>(&router));
  EXPECT_THROW(express.chain_via(nullptr), ParameterError);

  // Chaining toward a non-express hop is rejected when the first packet
  // resolves the route.
  router.add_route(5, &queued);
  express.chain_via(&router);
  Packet pkt = make_packet(1000, 0);
  pkt.dst = 5;
  EXPECT_THROW(express.handle(std::move(pkt)), ParameterError);
}

TEST(LinkTest, InjectAtBatchMatchesEventDrivenArrivals) {
  // The pulse attacker's batched bursts: injecting a whole burst in one
  // call stack, each packet at its analytic arrival time, must serialize
  // exactly like per-event handle() calls at those times.
  auto drive = [](bool batched, std::vector<Time>& times,
                  std::uint64_t& events) {
    Simulator sim;
    RecordingSink sink(sim);
    Link lane(sim, "lane", kbps(16), sec(0.5),
              static_cast<PacketHandler*>(&sink));
    for (int i = 0; i < 3; ++i) {
      const Time at = 0.25 * i;
      if (batched) {
        // One event injects the whole burst with analytic arrival times.
        if (i == 0) {
          sim.schedule_at(0.0, [&lane] {
            for (int j = 0; j < 3; ++j) {
              lane.inject_at(make_packet(1000, j), 0.25 * j);
            }
          });
        }
      } else {
        sim.schedule_at(at, [&lane, i] { lane.handle(make_packet(1000, i)); });
      }
    }
    sim.run();
    times = sink.times;
    events = sim.scheduler().events_executed();
  };

  std::vector<Time> ref_times, batch_times;
  std::uint64_t ref_events = 0, batch_events = 0;
  drive(false, ref_times, ref_events);
  drive(true, batch_times, batch_events);

  ASSERT_EQ(ref_times.size(), 3u);
  EXPECT_EQ(batch_times, ref_times);
  EXPECT_LT(batch_events, ref_events);
}

TEST(LinkTest, SetDownstreamRewiresDeliveryTarget) {
  // Fast-path direct wiring: retargeting the delivery handler changes the
  // call path only — serialization and delivery instants are untouched.
  Simulator sim;
  RecordingSink before(sim);
  RecordingSink after(sim);
  Link link(sim, "l", kbps(8), sec(0.5), std::make_unique<DropTailQueue>(10),
            &before);
  link.handle(make_packet(1000, 0));
  sim.schedule_at(2.0, [&link, &after] {
    link.set_downstream(&after);
    link.handle(make_packet(1000, 1));
  });
  sim.run();
  ASSERT_EQ(before.times.size(), 1u);
  EXPECT_NEAR(before.times[0], 1.5, 1e-9);
  ASSERT_EQ(after.times.size(), 1u);
  EXPECT_NEAR(after.times[0], 3.5, 1e-9);
  EXPECT_THROW(link.set_downstream(nullptr), ParameterError);
}

TEST(LinkTest, FusedLinkWithDepartureTapKeepsServiceEvents) {
  // A departure tap must observe the packet at its departure instant, so a
  // fused link with one installed falls back to the full service path.
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), sec(0.5), std::make_unique<DropTailQueue>(10),
            &sink);
  link.set_fused(true);
  std::vector<Time> departures;
  link.add_departure_tap(
      [&departures, &sim](const Packet&) { departures.push_back(sim.now()); });
  link.handle(make_packet(1000, 0));
  sim.run();
  ASSERT_EQ(departures.size(), 1u);
  EXPECT_NEAR(departures[0], 1.0, 1e-9);  // at serialization end
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_NEAR(sink.times[0], 1.5, 1e-9);
}

}  // namespace
}  // namespace pdos
