#include "net/link.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/droptail.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

/// Records every packet it receives together with the arrival time.
class RecordingSink : public PacketHandler {
 public:
  explicit RecordingSink(Simulator& sim) : sim_(sim) {}
  void handle(Packet pkt) override {
    times.push_back(sim_.now());
    packets.push_back(std::move(pkt));
  }
  std::vector<Time> times;
  std::vector<Packet> packets;

 private:
  Simulator& sim_;
};

Packet make_packet(Bytes size, std::int64_t seq = 0) {
  Packet pkt;
  pkt.size_bytes = size;
  pkt.seq = seq;
  return pkt;
}

TEST(LinkTest, DeliversAfterSerializationPlusPropagation) {
  Simulator sim;
  RecordingSink sink(sim);
  // 1000 bytes at 8 kbps -> 1 s serialization; +0.5 s propagation.
  Link link(sim, "l", kbps(8), sec(0.5), std::make_unique<DropTailQueue>(10),
            &sink);
  link.handle(make_packet(1000));
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_NEAR(sink.times[0], 1.5, 1e-9);
}

TEST(LinkTest, BackToBackPacketsSerializeSequentially) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(10),
            &sink);
  link.handle(make_packet(1000, 0));
  link.handle(make_packet(1000, 1));
  link.handle(make_packet(1000, 2));
  sim.run();
  ASSERT_EQ(sink.times.size(), 3u);
  EXPECT_NEAR(sink.times[0], 1.0, 1e-9);
  EXPECT_NEAR(sink.times[1], 2.0, 1e-9);
  EXPECT_NEAR(sink.times[2], 3.0, 1e-9);
  EXPECT_EQ(sink.packets[0].seq, 0);
  EXPECT_EQ(sink.packets[2].seq, 2);
}

TEST(LinkTest, PropagationIsPipelined) {
  // With a long propagation delay, the second packet must not wait for the
  // first packet's propagation, only for its serialization.
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), sec(10), std::make_unique<DropTailQueue>(10),
            &sink);
  link.handle(make_packet(1000, 0));
  link.handle(make_packet(1000, 1));
  sim.run();
  ASSERT_EQ(sink.times.size(), 2u);
  EXPECT_NEAR(sink.times[0], 11.0, 1e-9);
  EXPECT_NEAR(sink.times[1], 12.0, 1e-9);  // not 22.0
}

TEST(LinkTest, QueueOverflowDrops) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(2),
            &sink);
  // First packet goes into service immediately; two buffer slots remain.
  for (int i = 0; i < 5; ++i) link.handle(make_packet(1000, i));
  sim.run();
  EXPECT_EQ(sink.packets.size(), 3u);
  EXPECT_EQ(link.queue().stats().dropped, 2u);
}

TEST(LinkTest, ArrivalTapSeesDroppedPacketsToo) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(1),
            &sink);
  int arrivals = 0;
  link.add_arrival_tap([&](const Packet&) { ++arrivals; });
  for (int i = 0; i < 4; ++i) link.handle(make_packet(1000, i));
  sim.run();
  EXPECT_EQ(arrivals, 4);
  EXPECT_EQ(sink.packets.size(), 2u);
}

TEST(LinkTest, DepartureTapCountsOnlyTransmitted) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(1),
            &sink);
  int departures = 0;
  link.add_departure_tap([&](const Packet&) { ++departures; });
  for (int i = 0; i < 4; ++i) link.handle(make_packet(1000, i));
  sim.run();
  EXPECT_EQ(departures, 2);
}

TEST(LinkTest, IdleLinkResumesAfterDrain) {
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(10),
            &sink);
  link.handle(make_packet(1000));
  sim.run();
  EXPECT_FALSE(link.busy());
  link.handle(make_packet(1000));
  sim.run();
  EXPECT_EQ(sink.packets.size(), 2u);
  EXPECT_NEAR(sink.times[1], sink.times[0] + 1.0, 1e-9);
}

TEST(LinkTest, ThroughputMatchesRate) {
  // Saturate a 1 Mbps link for 1 second: ~125 kB should get through.
  Simulator sim;
  RecordingSink sink(sim);
  Link link(sim, "l", mbps(1), 0.0, std::make_unique<DropTailQueue>(10000),
            &sink);
  const Bytes pkt_size = 1250;  // 10 ms each
  for (int i = 0; i < 100; ++i) link.handle(make_packet(pkt_size, i));
  // 100 packets * 10 ms = 1 s of service; allow fp accumulation slack.
  sim.run_until(sec(1.0) + us(1));
  EXPECT_EQ(sink.packets.size(), 100u);
}

TEST(LinkTest, InvalidConstructionThrows) {
  Simulator sim;
  RecordingSink sink(sim);
  auto make_link = [&](BitRate rate, Time delay, bool with_queue,
                       PacketHandler* down) {
    Link link(sim, "l", rate, delay,
              with_queue ? std::make_unique<DropTailQueue>(1) : nullptr,
              down);
  };
  EXPECT_THROW(make_link(0.0, 0.0, true, &sink), ParameterError);
  EXPECT_THROW(make_link(kbps(8), -1.0, true, &sink), ParameterError);
  EXPECT_THROW(make_link(kbps(8), 0.0, false, &sink), ParameterError);
  EXPECT_THROW(make_link(kbps(8), 0.0, true, nullptr), ParameterError);
}

}  // namespace
}  // namespace pdos
