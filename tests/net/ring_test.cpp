// Property tests for the power-of-two ring against a std::deque reference.
//
// The ring replaced std::deque in the queue disciplines and the link's
// propagation pipeline; these tests pin the FIFO contract under the exact
// conditions that bite circular buffers — growth while wrapped, drain to
// empty, refill after clear — by running long randomized push/pop schedules
// against the reference container.
#include "net/packet_ring.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <random>

#include "util/assert.hpp"

namespace pdos {
namespace {

TEST(RingTest, MatchesDequeReferenceUnderRandomChurn) {
  Ring<int> ring;
  std::deque<int> ref;
  std::mt19937 rng(20250806);
  int next = 0;
  for (int step = 0; step < 100000; ++step) {
    // Alternate growth-biased and drain-biased phases so the ring both
    // grows while its head is mid-buffer and repeatedly empties out.
    const bool grow_phase = (step / 5000) % 2 == 0;
    const bool push = ref.empty() || (rng() % 10 < (grow_phase ? 7u : 3u));
    if (push) {
      ring.push_back(int(next));
      ref.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(ring.front(), ref.front());
      const int got = ring.pop_front();
      ASSERT_EQ(got, ref.front());
      ref.pop_front();
    }
    ASSERT_EQ(ring.size(), ref.size());
    ASSERT_EQ(ring.empty(), ref.empty());
  }
  while (!ref.empty()) {
    ASSERT_EQ(ring.pop_front(), ref.front());
    ref.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingTest, GrowthWhileWrappedPreservesOrder) {
  Ring<int> ring(4);
  ASSERT_EQ(ring.capacity(), 4u);
  // Wrap the head, then force a rebuild mid-wrap.
  for (int i = 0; i < 3; ++i) ring.push_back(int(i));
  EXPECT_EQ(ring.pop_front(), 0);
  EXPECT_EQ(ring.pop_front(), 1);
  for (int i = 3; i < 10; ++i) ring.push_back(int(i));  // grows past 4
  EXPECT_GE(ring.capacity(), 8u);
  for (int i = 2; i < 10; ++i) EXPECT_EQ(ring.pop_front(), i);
  EXPECT_TRUE(ring.empty());
}

TEST(RingTest, ReserveRoundsUpToPowerOfTwoAndSticks) {
  Ring<int> ring;
  EXPECT_EQ(ring.capacity(), 0u);
  ring.reserve(9);
  EXPECT_EQ(ring.capacity(), 16u);
  for (int i = 0; i < 16; ++i) ring.push_back(int(i));
  EXPECT_EQ(ring.capacity(), 16u);  // exactly full, no growth yet
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 16u);  // clear keeps the storage
  ring.push_back(42);
  EXPECT_EQ(ring.front(), 42);
}

TEST(RingTest, FrontAndPopOnEmptyThrow) {
  Ring<int> ring;
  EXPECT_THROW(ring.front(), InvariantError);
  EXPECT_THROW(ring.pop_front(), InvariantError);
}

TEST(RingTest, PacketRingMovesPayloadsInOrder) {
  PacketRing ring;
  for (int i = 0; i < 6; ++i) {
    Packet pkt;
    pkt.seq = i;
    pkt.size_bytes = 1040;
    ring.push_back(std::move(pkt));
  }
  for (int i = 0; i < 6; ++i) {
    const Packet pkt = ring.pop_front();
    EXPECT_EQ(pkt.seq, i);
    EXPECT_EQ(pkt.size_bytes, 1040u);
  }
}

}  // namespace
}  // namespace pdos
