#include <gtest/gtest.h>

#include "net/droptail.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

Packet make_packet(Bytes size = 1040, PacketType type = PacketType::kTcpData,
                   std::int64_t seq = 0) {
  Packet pkt;
  pkt.type = type;
  pkt.size_bytes = size;
  pkt.seq = seq;
  return pkt;
}

TEST(DropTailTest, FifoOrder) {
  DropTailQueue q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(make_packet(100, PacketType::kTcpData, i)));
  for (int i = 0; i < 5; ++i) {
    auto pkt = q.dequeue();
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->seq, i);
  }
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailTest, DropsWhenFull) {
  DropTailQueue q(3);
  EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_FALSE(q.enqueue(make_packet()));
  EXPECT_EQ(q.length(), 3u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 3u);
}

TEST(DropTailTest, DequeueReopensSpace) {
  DropTailQueue q(1);
  EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_FALSE(q.enqueue(make_packet()));
  EXPECT_TRUE(q.dequeue().has_value());
  EXPECT_TRUE(q.enqueue(make_packet()));
}

TEST(DropTailTest, DropStatsSplitByTrafficClass) {
  DropTailQueue q(1);
  EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_FALSE(q.enqueue(make_packet(1040, PacketType::kTcpData)));
  EXPECT_FALSE(q.enqueue(make_packet(500, PacketType::kAttack)));
  EXPECT_EQ(q.stats().dropped_tcp, 1u);
  EXPECT_EQ(q.stats().dropped_attack, 1u);
  EXPECT_EQ(q.stats().bytes_dropped, 1540);
}

TEST(DropTailTest, CapacityAccessors) {
  DropTailQueue q(17);
  EXPECT_EQ(q.capacity(), 17u);
  EXPECT_EQ(q.length(), 0u);
}

TEST(DropTailTest, ZeroCapacityRejected) {
  EXPECT_THROW(DropTailQueue(0), ParameterError);
}

TEST(DropTailTest, DequeueCountsInStats) {
  DropTailQueue q(4);
  q.enqueue(make_packet());
  q.enqueue(make_packet());
  (void)q.dequeue();
  EXPECT_EQ(q.stats().dequeued, 1u);
  EXPECT_EQ(q.length(), 1u);
}

}  // namespace
}  // namespace pdos
