#include "net/red.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

Packet make_packet(PacketType type = PacketType::kTcpData) {
  Packet pkt;
  pkt.type = type;
  pkt.size_bytes = 1040;
  return pkt;
}

RedParams small_params() {
  RedParams p;
  p.capacity = 40;
  p.min_th = 5;
  p.max_th = 15;
  p.wq = 0.5;  // fast-moving average for deterministic unit tests
  p.max_p = 0.1;
  p.gentle = true;
  return p;
}

TEST(RedParamsTest, PaperTestbedRatios) {
  const RedParams p = RedParams::paper_testbed(100);
  EXPECT_DOUBLE_EQ(p.min_th, 20.0);
  EXPECT_DOUBLE_EQ(p.max_th, 80.0);
  EXPECT_DOUBLE_EQ(p.wq, 0.002);
  EXPECT_DOUBLE_EQ(p.max_p, 0.1);
  EXPECT_TRUE(p.gentle);
  EXPECT_EQ(p.capacity, 100u);
}

TEST(RedParamsTest, ValidationRejectsBadThresholds) {
  RedParams p = small_params();
  p.min_th = 20;  // >= max_th
  EXPECT_THROW(RedQueue(p, Rng(1)), ParameterError);
  p = small_params();
  p.wq = 0.0;
  EXPECT_THROW(RedQueue(p, Rng(1)), ParameterError);
  p = small_params();
  p.max_p = 1.5;
  EXPECT_THROW(RedQueue(p, Rng(1)), ParameterError);
  p = small_params();
  p.capacity = 0;
  EXPECT_THROW(RedQueue(p, Rng(1)), ParameterError);
}

TEST(RedTest, NoDropsBelowMinThreshold) {
  RedQueue q(small_params(), Rng(1));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(RedTest, AvgTracksQueueWithEwma) {
  RedParams p = small_params();
  p.wq = 0.5;
  RedQueue q(p, Rng(1));
  q.enqueue(make_packet());  // avg = 0.5*0 + 0.5*0 = 0 (q was 0 at arrival)
  q.enqueue(make_packet());  // avg = 0.5*0 + 0.5*1 = 0.5
  EXPECT_NEAR(q.avg(), 0.5, 1e-12);
  q.enqueue(make_packet());  // avg = 0.25 + 0.5*2
  EXPECT_NEAR(q.avg(), 1.25, 1e-12);
}

TEST(RedTest, ForcedDropWhenBufferFull) {
  RedParams p = small_params();
  p.capacity = 5;
  p.min_th = 100;  // disable early dropping
  p.max_th = 200;
  RedQueue q(p, Rng(1));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_FALSE(q.enqueue(make_packet()));
  EXPECT_EQ(q.forced_drops(), 1u);
  EXPECT_EQ(q.early_drops(), 0u);
}

TEST(RedTest, HardDropAboveGentleRamp) {
  // Push avg beyond 2*max_th: every arrival must be dropped.
  RedParams p = small_params();
  p.wq = 1.0;  // avg == instantaneous queue
  p.min_th = 2;
  p.max_th = 4;
  p.gentle = true;
  p.capacity = 100;
  RedQueue q(p, Rng(1));
  int accepted = 0;
  for (int i = 0; i < 30; ++i) {
    if (q.enqueue(make_packet())) ++accepted;
  }
  // Once queue length exceeds 2*max_th = 8, everything is dropped.
  EXPECT_LE(accepted, 9 + 1);
  EXPECT_GT(q.stats().dropped, 15u);
}

TEST(RedTest, EarlyDropProbabilityIncreasesWithAvg) {
  // Statistical property: with avg pinned high in [min_th, max_th], drops
  // happen; with avg pinned low, they don't.
  RedParams p;
  p.capacity = 1000;
  p.min_th = 10;
  p.max_th = 500;  // wide band so we stay in probabilistic region
  p.wq = 1.0;
  p.max_p = 0.5;
  p.gentle = false;
  RedQueue q(p, Rng(7));
  std::uint64_t drops_low = 0;
  // Keep queue around 20 (just above min_th): low drop probability.
  for (int i = 0; i < 200; ++i) {
    if (!q.enqueue(make_packet())) ++drops_low;
    if (q.length() > 20) (void)q.dequeue();
  }
  RedQueue q2(p, Rng(7));
  std::uint64_t drops_high = 0;
  for (int i = 0; i < 200; ++i) {
    if (!q2.enqueue(make_packet())) ++drops_high;
    if (q2.length() > 400) (void)q2.dequeue();
  }
  EXPECT_GT(drops_high, drops_low);
}

TEST(RedTest, IdleDecayReducesAverage) {
  Scheduler clock;
  RedParams p = small_params();
  p.wq = 0.1;
  RedQueue q(p, Rng(1));
  q.bind(&clock, mbps(10), 1040);
  // Build up the average.
  for (int i = 0; i < 10; ++i) q.enqueue(make_packet());
  while (q.dequeue().has_value()) {
  }
  const double avg_before = q.avg();
  ASSERT_GT(avg_before, 0.5);
  // Let a long idle period elapse, then observe the decayed average.
  clock.schedule(sec(1.0), [] {});
  clock.run();
  q.enqueue(make_packet());
  EXPECT_LT(q.avg(), avg_before * 0.1);
}

TEST(RedTest, DropsAreRandomizedBySeed) {
  RedParams p = small_params();
  p.wq = 1.0;
  p.min_th = 1;
  p.max_th = 30;
  p.max_p = 0.3;
  p.capacity = 100;
  auto run_with_seed = [&](std::uint64_t seed) {
    RedQueue q(p, Rng(seed));
    std::uint64_t pattern = 0;
    for (int i = 0; i < 60; ++i) {
      pattern = (pattern << 1) | (q.enqueue(make_packet()) ? 1u : 0u);
    }
    return pattern;
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
  EXPECT_EQ(run_with_seed(3), run_with_seed(3));  // deterministic per seed
}

TEST(RedTest, FifoOrderPreserved) {
  RedParams p = small_params();
  p.min_th = 30;  // no early drops for this short sequence
  p.max_th = 35;
  RedQueue q(p, Rng(1));
  for (int i = 0; i < 5; ++i) {
    Packet pkt = make_packet();
    pkt.seq = i;
    EXPECT_TRUE(q.enqueue(std::move(pkt)));
  }
  for (int i = 0; i < 5; ++i) {
    auto pkt = q.dequeue();
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->seq, i);
  }
}

}  // namespace
}  // namespace pdos
