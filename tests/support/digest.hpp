// Shared RunResult serialization + FNV-1a digest helpers for the golden
// determinism suites (tests/sweep/golden_figures_test.cpp and
// tests/pdes/pdes_test.cpp). Every numeric field is rendered at full
// precision (%.17g round-trips doubles exactly) so a digest match means the
// results are bit-identical, not merely close.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/experiment.hpp"

namespace pdos::testsupport {

inline std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

inline void append(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%.17g\n", key, value);
  out += buf;
}

inline void append(std::string& out, const char* key, std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%" PRIu64 "\n", key, value);
  out += buf;
}

/// Serialize every observable field of a RunResult at full precision.
/// `include_events` = false drops the scheduler event count: sharded fast
/// runs match the unsharded fast path on every counter, bin, and trace but
/// not on events (cross-shard links cannot fuse — DESIGN.md §13).
inline std::string serialize(const RunResult& r, bool include_events = true) {
  std::string out;
  append(out, "goodput_bytes", static_cast<std::uint64_t>(r.goodput_bytes));
  append(out, "goodput_rate", r.goodput_rate);
  append(out, "utilization", r.utilization);
  append(out, "fairness", r.fairness_index);
  append(out, "bin_width", r.bin_width);
  for (Bytes b : r.per_flow_goodput) {
    append(out, "flow", static_cast<std::uint64_t>(b));
  }
  for (double v : r.incoming_bins) append(out, "in", v);
  for (double v : r.attack_bins) append(out, "atk", v);
  for (double v : r.queue_occupancy) append(out, "occ", v);
  for (double v : r.red_avg_samples) append(out, "avg", v);
  append(out, "q_enqueued", r.bottleneck_queue.enqueued);
  append(out, "q_dequeued", r.bottleneck_queue.dequeued);
  append(out, "q_dropped", r.bottleneck_queue.dropped);
  append(out, "q_dropped_tcp", r.bottleneck_queue.dropped_tcp);
  append(out, "q_dropped_attack", r.bottleneck_queue.dropped_attack);
  append(out, "q_bytes_dropped", r.bottleneck_queue.bytes_dropped);
  append(out, "red_early", r.red_early_drops);
  append(out, "red_forced", r.red_forced_drops);
  append(out, "timeouts", r.total_timeouts);
  append(out, "fast_recoveries", r.total_fast_recoveries);
  append(out, "retransmits", r.total_retransmits);
  append(out, "jitter", r.mean_delivery_jitter);
  append(out, "attack_packets", r.attack_packets_sent);
  if (include_events) append(out, "events", r.events_executed);
  for (const auto& [t, w] : r.cwnd_trace) {
    append(out, "cwnd_t", t);
    append(out, "cwnd_w", w);
  }
  return out;
}

// Golden digests generated at commit 6550a94 (see golden_figures_test.cpp).
// Regenerate ONLY for a change that intentionally alters simulation
// semantics, and say so in the commit message.
inline constexpr std::uint64_t kFig03Digest = 0xdb3c1966f47adfa2ull;
inline constexpr std::uint64_t kFig12RedDigest = 0x328f57d94a030509ull;
inline constexpr std::uint64_t kFig12DropTailDigest = 0xebe7d50b5a3f53cfull;

}  // namespace pdos::testsupport
