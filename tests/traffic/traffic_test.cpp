#include "traffic/sources.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

class Collector : public PacketHandler {
 public:
  explicit Collector(Simulator& sim) : sim_(sim) {}
  void handle(Packet pkt) override {
    EXPECT_EQ(pkt.type, PacketType::kUdp);
    times.push_back(sim_.now());
    bytes += pkt.size_bytes;
  }
  std::vector<Time> times;
  Bytes bytes = 0;

 private:
  Simulator& sim_;
};

TEST(CbrTest, PacketsEvenlySpacedAtConfiguredRate) {
  Simulator sim;
  Collector sink(sim);
  // 8 Mbps with 1000-byte packets: one per millisecond.
  CbrSource source(sim, mbps(8), 1000, 1, 2, &sink);
  source.start(0.0);
  sim.run_until(ms(10.5));
  ASSERT_GE(sink.times.size(), 10u);
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_NEAR(sink.times[i] - sink.times[i - 1], 0.001, 1e-12);
  }
}

TEST(CbrTest, LongRunRateMatches) {
  Simulator sim;
  Collector sink(sim);
  CbrSource source(sim, mbps(4), 500, 1, 2, &sink);
  source.start(0.0);
  sim.run_until(sec(5.0));
  const BitRate measured = static_cast<double>(sink.bytes) * 8.0 / 5.0;
  EXPECT_NEAR(measured / mbps(4), 1.0, 0.01);
}

TEST(CbrTest, StopHaltsEmission) {
  Simulator sim;
  Collector sink(sim);
  CbrSource source(sim, mbps(8), 1000, 1, 2, &sink);
  source.start(0.0);
  sim.schedule(ms(5), [&] { source.stop(); });
  sim.run_until(sec(1.0));
  EXPECT_LE(sink.times.size(), 7u);
}

TEST(CbrTest, Validation) {
  Simulator sim;
  Collector sink(sim);
  EXPECT_THROW(CbrSource(sim, 0.0, 1000, 1, 2, &sink), ParameterError);
  EXPECT_THROW(CbrSource(sim, mbps(1), 0, 1, 2, &sink), ParameterError);
  EXPECT_THROW(CbrSource(sim, mbps(1), 1000, 1, 2, nullptr),
               ParameterError);
}

TEST(OnOffTest, AverageRateFormula) {
  Simulator sim;
  Collector sink(sim);
  OnOffSource source(sim, mbps(10), ms(300), ms(700), 1000, 1, 2, &sink);
  EXPECT_NEAR(source.average_rate(), mbps(3), 1e-6);
}

TEST(OnOffTest, LongRunRateNearAverage) {
  Simulator sim(42);
  Collector sink(sim);
  OnOffSource source(sim, mbps(10), ms(500), ms(500), 1000, 1, 2, &sink);
  source.start(0.0);
  sim.run_until(sec(120.0));
  const BitRate measured = static_cast<double>(sink.bytes) * 8.0 / 120.0;
  EXPECT_NEAR(measured / source.average_rate(), 1.0, 0.2);
}

TEST(OnOffTest, TrafficIsBursty) {
  Simulator sim(7);
  Collector sink(sim);
  OnOffSource source(sim, mbps(10), ms(200), ms(800), 1000, 1, 2, &sink);
  source.start(0.0);
  sim.run_until(sec(30.0));
  ASSERT_GT(sink.times.size(), 100u);
  // There must be gaps far longer than the in-burst spacing (0.8 ms).
  int long_gaps = 0;
  for (std::size_t i = 1; i < sink.times.size(); ++i) {
    if (sink.times[i] - sink.times[i - 1] > 0.1) ++long_gaps;
  }
  EXPECT_GT(long_gaps, 5);
}

TEST(OnOffTest, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    Simulator sim(seed);
    Collector sink(sim);
    OnOffSource source(sim, mbps(10), ms(500), ms(500), 1000, 1, 2, &sink);
    source.start(0.0);
    sim.run_until(sec(10.0));
    return sink.bytes;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(OnOffTest, Validation) {
  Simulator sim;
  Collector sink(sim);
  EXPECT_THROW(OnOffSource(sim, mbps(1), 0.0, ms(1), 1000, 1, 2, &sink),
               ParameterError);
  EXPECT_THROW(OnOffSource(sim, mbps(1), ms(1), -1.0, 1000, 1, 2, &sink),
               ParameterError);
}

}  // namespace
}  // namespace pdos
