#include "core/roq.hpp"

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

VictimProfile victim() {
  VictimProfile v;
  v.aimd = AimdParams::new_reno();
  v.spacket = 1040;
  v.rbottle = mbps(15);
  v.rtts = VictimProfile::even_rtts(15, ms(20), ms(460));
  return v;
}

TEST(RoqTest, PotencyIsDamageOverCost) {
  EXPECT_DOUBLE_EQ(roq_potency(5e6, 2e6, 1.0), 2.5);
  EXPECT_DOUBLE_EQ(roq_potency(0.0, 2e6, 1.0), 0.0);
  EXPECT_NEAR(roq_potency(4e6, 4e6, 0.5), 4e6 / 2000.0, 1e-6);
}

TEST(RoqTest, ModelPotencyZeroBelowCpsi) {
  const VictimProfile v = victim();
  const double cpsi = c_psi(v, ms(50), 25.0 / 15.0);
  EXPECT_DOUBLE_EQ(pdos_model_potency(v, ms(50), 25.0 / 15.0, cpsi * 0.9),
                   0.0);
  EXPECT_GT(pdos_model_potency(v, ms(50), 25.0 / 15.0, cpsi + 0.1), 0.0);
}

TEST(RoqTest, OmegaOneOptimumIsTwiceCpsi) {
  const VictimProfile v = victim();
  const double cpsi = c_psi(v, ms(50), 25.0 / 15.0);
  ASSERT_LT(2.0 * cpsi, 1.0);
  EXPECT_NEAR(roq_optimal_gamma(v, ms(50), 25.0 / 15.0, 1.0), 2.0 * cpsi,
              1e-5);
}

TEST(RoqTest, RoqOptimumIsCheaperThanGainOptimum) {
  // The potency-maximizing operating point spends less traffic than the
  // gain-maximizing one whenever C_Psi < 1/4 (2C < sqrt(C) there).
  const VictimProfile v = victim();
  const double cpsi = c_psi(v, ms(50), 25.0 / 15.0);
  ASSERT_LT(cpsi, 0.25);
  const double roq_gamma = roq_optimal_gamma(v, ms(50), 25.0 / 15.0);
  const double gain_gamma = optimal_gamma(cpsi, 1.0);
  EXPECT_LT(roq_gamma, gain_gamma);
}

TEST(RoqTest, PotencyUnimodalOnGrid) {
  const VictimProfile v = victim();
  const double c_attack = 25.0 / 15.0;
  const double gstar = roq_optimal_gamma(v, ms(50), c_attack);
  const double best = pdos_model_potency(v, ms(50), c_attack, gstar);
  for (double gamma = 0.05; gamma < 1.0; gamma += 0.01) {
    EXPECT_LE(pdos_model_potency(v, ms(50), c_attack, gamma), best + 1e-9)
        << "gamma=" << gamma;
  }
}

TEST(RoqTest, HigherOmegaFavorsCheaperAttacks) {
  const VictimProfile v = victim();
  const double c_attack = 25.0 / 15.0;
  const double g1 = roq_optimal_gamma(v, ms(50), c_attack, 1.0);
  const double g2 = roq_optimal_gamma(v, ms(50), c_attack, 2.0);
  EXPECT_LT(g2, g1);
}

TEST(RoqTest, Validation) {
  const VictimProfile v = victim();
  EXPECT_THROW(roq_potency(1.0, 0.0), ParameterError);
  EXPECT_THROW(roq_potency(-1.0, 1.0), ParameterError);
  EXPECT_THROW(roq_potency(1.0, 1.0, 0.0), ParameterError);
  EXPECT_THROW(pdos_model_potency(v, ms(50), 1.0, 1.5), ParameterError);
}

}  // namespace
}  // namespace pdos
