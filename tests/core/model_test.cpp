#include "core/model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"

namespace pdos {
namespace {

VictimProfile paper_victim(int flows = 15) {
  VictimProfile victim;
  victim.aimd = AimdParams::new_reno();
  victim.spacket = 1040;
  victim.rbottle = mbps(15);
  victim.rtts = VictimProfile::even_rtts(flows, ms(20), ms(460));
  return victim;
}

TEST(Eq1Test, ConvergedCwndMatchesClosedForm) {
  // W∞ = a/(1-b) * T/(d*RTT); AIMD(1, 0.5), T = 2 s, RTT = 100 ms, d = 1.
  const double w = converged_cwnd(AimdParams::new_reno(), sec(2.0), ms(100));
  EXPECT_DOUBLE_EQ(w, (1.0 / 0.5) * (2.0 / (1.0 * 0.1)));  // = 40
  EXPECT_DOUBLE_EQ(w, 40.0);
}

TEST(Eq1Test, DelayedAcksHalveConvergedCwnd) {
  const double w1 = converged_cwnd(AimdParams::new_reno(), sec(1.0), ms(100));
  const double w2 =
      converged_cwnd(AimdParams::new_reno_delack(), sec(1.0), ms(100));
  EXPECT_DOUBLE_EQ(w2, w1 / 2.0);
}

TEST(Eq1Test, CwndRecursionFixedPointIsWInfinity) {
  const AimdParams aimd{1.0, 0.5, 1};
  const Time t = sec(1.5);
  const Time rtt = ms(80);
  const double w_inf = converged_cwnd(aimd, t, rtt);
  EXPECT_NEAR(cwnd_step(aimd, t, rtt, w_inf), w_inf, 1e-9);
}

TEST(Eq1Test, RecursionConvergesFromAnyStart) {
  const AimdParams aimd{1.0, 0.5, 1};
  const Time t = sec(2.0);
  const Time rtt = ms(200);
  const double w_inf = converged_cwnd(aimd, t, rtt);
  for (double w0 : {0.0, 1.0, 100.0, 1000.0}) {
    double w = w0;
    for (int i = 0; i < 60; ++i) w = cwnd_step(aimd, t, rtt, w);
    EXPECT_NEAR(w, w_inf, 1e-6) << "w0=" << w0;
  }
}

TEST(Eq1Test, FewPulsesSufficeForTypicalTcp) {
  // The paper (§3, proof of Lemma 2) cites [13]: AIMD(1, 0.5) converges in
  // fewer than 10 pulses. With b = 0.5 the distance to W∞ halves per pulse,
  // so the extreme corner (T_AIMD/RTT < 1, W∞ < 1 segment) needs a couple
  // more to meet a 5% relative tolerance of a sub-packet window.
  const AimdParams aimd{1.0, 0.5, 1};
  for (Time rtt : {ms(20), ms(100), ms(460)}) {
    for (Time t : {ms(200), sec(1.0), sec(2.0)}) {
      EXPECT_LE(pulses_to_converge(aimd, t, rtt, 64.0), 12)
          << "rtt=" << rtt << " t=" << t;
    }
  }
  // The typical regime the paper refers to (W∞ of a few segments or more).
  EXPECT_LE(pulses_to_converge(aimd, sec(1.0), ms(100), 64.0), 10);
}

TEST(Eq2Test, SteadyPhasePacketsMatchClosedForm) {
  // (a(1+b)/(2d(1-b))) (T/RTT)^2 per interval.
  const AimdParams aimd{1.0, 0.5, 1};
  const double pkts = flow_packets_steady(aimd, sec(1.0), ms(100));
  EXPECT_NEAR(pkts, (1.0 * 1.5 / (2.0 * 0.5)) * 10.0 * 10.0, 1e-9);
  EXPECT_NEAR(pkts, 150.0, 1e-9);
}

TEST(Eq2Test, ExactThroughputApproachesSteadyApproximation) {
  // Eq. (9) approximates Eq. (2) with W_n = W∞; once the transient is an
  // O(1) prefix of many pulses, per-interval averages converge.
  const AimdParams aimd{1.0, 0.5, 1};
  const Time t = sec(1.0);
  const Time rtt = ms(100);
  const double w1 = 60.0;
  const double steady = flow_packets_steady(aimd, t, rtt);
  const int n = 500;
  const double exact = flow_packets_exact(aimd, t, rtt, w1, n);
  EXPECT_NEAR(exact / ((n - 1) * steady), 1.0, 0.02);
}

TEST(Eq2Test, TransientFromLargeWindowSendsMoreThanSteady) {
  const AimdParams aimd{1.0, 0.5, 1};
  const Time t = sec(1.0);
  const Time rtt = ms(100);
  const double w_inf = converged_cwnd(aimd, t, rtt);
  const double from_large = flow_packets_exact(aimd, t, rtt, 10 * w_inf, 10);
  const double from_steady = flow_packets_exact(aimd, t, rtt, w_inf, 10);
  EXPECT_GT(from_large, from_steady);
}

TEST(Eq2Test, SinglePulseHasNoFreeIntervals) {
  // With N = 1 there are zero free-of-attack intervals: no packets.
  const AimdParams aimd{1.0, 0.5, 1};
  EXPECT_DOUBLE_EQ(flow_packets_exact(aimd, sec(1.0), ms(100), 30.0, 1),
                   0.0);
}

TEST(Eq2Test, PacketsMonotoneInPulseCount) {
  const AimdParams aimd{1.0, 0.5, 1};
  double prev = -1.0;
  for (int n = 1; n <= 40; n += 3) {
    const double pkts = flow_packets_exact(aimd, sec(1.0), ms(100), 30.0, n);
    EXPECT_GT(pkts, prev) << "n=" << n;
    prev = pkts;
  }
}

TEST(Eq2Test, TransientIntervalUsesDecayingWindow) {
  // First interval from W1 = 64 sends (b*64 + (a/2d)T/RTT) * T/RTT
  // packets; check the two-pulse case against that closed form.
  const AimdParams aimd{1.0, 0.5, 1};
  const Time t = sec(1.0);
  const Time rtt = ms(100);
  const double ratio = t / rtt;  // 10
  const double expected = (0.5 * 64.0 + 0.5 * ratio / 1.0) * ratio;
  EXPECT_NEAR(flow_packets_exact(aimd, t, rtt, 64.0, 2), expected, 1e-9);
}

TEST(Eq8Test, NormalThroughputIsCapacityTimesDuration) {
  // 15 Mbps for (N-1) * 2 s, in bytes.
  EXPECT_DOUBLE_EQ(normal_throughput_bytes(mbps(15), sec(2.0), 11),
                   15e6 * 10 * 2.0 / 8.0);
}

TEST(Eq9Test, AggregateSumsOverFlows) {
  VictimProfile victim = paper_victim(3);
  victim.rtts = {ms(100), ms(100), ms(100)};
  const double agg = attack_throughput_bytes(victim, sec(1.0), 2);
  const double single =
      flow_packets_steady(victim.aimd, sec(1.0), ms(100)) * 1040;
  EXPECT_NEAR(agg, 3.0 * single, 1e-6);
}

TEST(Eq10Test, DegradationEqualsOneMinusCpsiOverGamma) {
  // Γ computed from Ψ ratios must equal 1 − C_Ψ/γ (the paper's Prop. 2).
  const VictimProfile victim = paper_victim(15);
  const Time textent = ms(50);
  const BitRate rattack = mbps(25);
  const double c_attack = rattack / victim.rbottle;
  const double cpsi = c_psi(victim, textent, c_attack);
  for (double gamma : {0.3, 0.5, 0.7, 0.9}) {
    const Time period = textent * c_attack / gamma;  // Eq. (4) inverted
    const double direct = throughput_degradation(victim, period);
    EXPECT_NEAR(direct, 1.0 - cpsi / gamma, 1e-9) << "gamma=" << gamma;
  }
}

TEST(Eq10Test, DegradationClampedToZeroWhenModelPredictsNoDamage) {
  VictimProfile victim = paper_victim(15);
  // Enormous period: TCP recovers fully between pulses.
  EXPECT_DOUBLE_EQ(throughput_degradation(victim, sec(100.0)), 0.0);
}

TEST(Eq11Test, CpsiFactorsAsTextentCattackCvictim) {
  const VictimProfile victim = paper_victim(25);
  const double cv = c_victim(victim);
  EXPECT_NEAR(c_psi(victim, ms(75), 2.0), 0.075 * 2.0 * cv, 1e-12);
}

TEST(Eq11Test, CpsiScalesLinearlyInParameters) {
  const VictimProfile victim = paper_victim(15);
  const double base = c_psi(victim, ms(50), 1.0);
  EXPECT_NEAR(c_psi(victim, ms(100), 1.0), 2.0 * base, 1e-12);
  EXPECT_NEAR(c_psi(victim, ms(50), 3.0), 3.0 * base, 1e-12);
}

TEST(Eq18Test, CvictimMatchesManualEvaluation) {
  VictimProfile victim;
  victim.aimd = AimdParams{1.0, 0.5, 2};
  victim.spacket = 1040;
  victim.rbottle = mbps(10);
  victim.rtts = {ms(150), ms(150)};
  const double expected = 4.0 * 1.0 * 1.5 * 1040.0 /
                          (0.5 * 2.0 * 10e6) * (2.0 / (0.15 * 0.15));
  EXPECT_NEAR(c_victim(victim), expected, 1e-9);
}

TEST(GainTest, ZeroOutsideFeasibleRegion) {
  EXPECT_DOUBLE_EQ(attack_gain(0.1, 0.2, 1.0), 0.0);  // gamma <= C_Psi
  EXPECT_DOUBLE_EQ(attack_gain(1.0, 0.2, 1.0), 0.0);  // flooding boundary
  EXPECT_DOUBLE_EQ(attack_gain(1.3, 0.2, 1.0), 0.0);
}

TEST(GainTest, PositiveInsideFeasibleRegion) {
  for (double gamma = 0.25; gamma < 1.0; gamma += 0.1) {
    EXPECT_GT(attack_gain(gamma, 0.2, 1.0), 0.0) << gamma;
  }
}

TEST(GainTest, RiskTermMatchesFig4Shapes) {
  // Risk-averse curves lie below risk-loving ones for all gamma in (0,1).
  for (double gamma = 0.1; gamma < 1.0; gamma += 0.2) {
    EXPECT_LT(risk_term(gamma, 2.0), risk_term(gamma, 1.0));
    EXPECT_LT(risk_term(gamma, 1.0), risk_term(gamma, 0.5));
  }
  // Limiting cases from the paper: kappa -> 0 gives 1 (risk ignored).
  EXPECT_DOUBLE_EQ(risk_term(0.5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(risk_term(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(risk_term(1.0, 5.0), 0.0);
}

TEST(ModelValidationTest, BadParametersThrow) {
  const VictimProfile victim = paper_victim();
  EXPECT_THROW(converged_cwnd(AimdParams{0.0, 0.5, 1}, 1.0, 0.1),
               ParameterError);
  EXPECT_THROW(converged_cwnd(AimdParams::new_reno(), 0.0, 0.1),
               ParameterError);
  EXPECT_THROW(converged_cwnd(AimdParams::new_reno(), 1.0, 0.0),
               ParameterError);
  EXPECT_THROW(normal_throughput_bytes(0.0, 1.0, 5), ParameterError);
  EXPECT_THROW(normal_throughput_bytes(mbps(15), 1.0, 1), ParameterError);
  EXPECT_THROW(c_psi(victim, 0.0, 1.0), ParameterError);
  EXPECT_THROW(attack_gain(0.5, -0.1, 1.0), ParameterError);
  EXPECT_THROW(risk_term(1.5, 1.0), ParameterError);
}

TEST(VictimProfileTest, EvenRttsEndpoints) {
  const auto rtts = VictimProfile::even_rtts(15, ms(20), ms(460));
  ASSERT_EQ(rtts.size(), 15u);
  EXPECT_DOUBLE_EQ(rtts.front(), 0.02);
  EXPECT_DOUBLE_EQ(rtts.back(), 0.46);
  for (std::size_t i = 1; i < rtts.size(); ++i)
    EXPECT_GT(rtts[i], rtts[i - 1]);
}

TEST(VictimProfileTest, InverseRttSqSum) {
  VictimProfile victim = paper_victim(2);
  victim.rtts = {ms(100), ms(200)};
  EXPECT_NEAR(victim.inverse_rtt_sq_sum(), 100.0 + 25.0, 1e-9);
}

TEST(VictimProfileTest, RiskClassification) {
  EXPECT_EQ(classify_risk(0.5), RiskClass::kRiskLoving);
  EXPECT_EQ(classify_risk(1.0), RiskClass::kRiskNeutral);
  EXPECT_EQ(classify_risk(3.0), RiskClass::kRiskAverse);
  EXPECT_THROW(classify_risk(0.0), ParameterError);
}

}  // namespace
}  // namespace pdos
