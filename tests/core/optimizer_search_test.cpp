// Search-then-confirm regression: the fluid-surrogate search must land on
// the same γ* as the all-packet reference search on the committed scenario,
// while spending far fewer packet runs. This is the contract that lets
// sweeps and planners use the fluid tier as the optimizer's inner loop.
#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

GammaSearch committed_search() {
  GammaSearch search;
  search.scenario = ScenarioConfig::ns2_dumbbell(15);
  search.textent = ms(50);
  search.rattack = mbps(25);
  search.kappa = 1.0;
  search.control.warmup = sec(5);
  search.control.measure = sec(15);
  search.grid_points = 7;
  search.confirm_top = 3;
  return search;
}

TEST(SearchConfirmTest, MatchesPacketOnlySearchOnCommittedScenario) {
  const GammaSearch search = committed_search();
  const GammaSearchResult confirmed = search_confirm_gamma(search);
  const GammaSearchResult reference = search_gamma_packet_only(search);

  // Same grid in both modes.
  ASSERT_EQ(confirmed.candidates.size(), reference.candidates.size());
  for (std::size_t i = 0; i < confirmed.candidates.size(); ++i) {
    EXPECT_DOUBLE_EQ(confirmed.candidates[i].gamma,
                     reference.candidates[i].gamma);
  }

  // The acceptance contract: fluid-search + packet-confirm returns the
  // exact γ* the all-packet search returns.
  EXPECT_DOUBLE_EQ(confirmed.gamma_star, reference.gamma_star);
  EXPECT_DOUBLE_EQ(confirmed.gain, reference.gain);
  EXPECT_DOUBLE_EQ(confirmed.degradation, reference.degradation);
  EXPECT_DOUBLE_EQ(confirmed.baseline_goodput, reference.baseline_goodput);

  // And it does so with a fraction of the packet work: confirm_top + the
  // baseline instead of every grid point + the baseline.
  EXPECT_EQ(confirmed.packet_runs, search.confirm_top + 1);
  EXPECT_EQ(reference.packet_runs, search.grid_points + 1);
  EXPECT_EQ(confirmed.fluid_runs, search.grid_points + 1);
  EXPECT_EQ(reference.fluid_runs, 0);

  // The surrogate's own optimum should be in the right neighbourhood of
  // the closed form (Corollary 3: γ* = sqrt(C_Ψ) under the model).
  EXPECT_GT(confirmed.gamma_star_fluid, 0.0);
  EXPECT_LT(std::abs(confirmed.gamma_star_fluid - confirmed.gamma_star),
            0.35);
}

TEST(SearchConfirmTest, ConfirmedWinnerHasPositiveMeasuredGain) {
  const GammaSearchResult result = search_confirm_gamma(committed_search());
  EXPECT_GT(result.gain, 0.0);
  EXPECT_GT(result.degradation, 0.0);
  EXPECT_LT(result.degradation, 1.0);
  int confirmed_count = 0;
  for (const auto& cand : result.candidates) {
    if (cand.confirmed) ++confirmed_count;
    EXPECT_GE(cand.gamma, 0.0);
    EXPECT_LT(cand.gamma, 1.0);
  }
  EXPECT_EQ(confirmed_count, 3);
}

TEST(SearchConfirmTest, RejectsDegenerateRequests) {
  GammaSearch search = committed_search();
  search.grid_points = 1;
  EXPECT_THROW(search_confirm_gamma(search), ParameterError);
  search = committed_search();
  search.confirm_top = 0;
  EXPECT_THROW(search_confirm_gamma(search), ParameterError);
  search = committed_search();
  search.gamma_lo = 0.9;
  search.gamma_hi = 0.5;
  EXPECT_THROW(search_confirm_gamma(search), ParameterError);
}

}  // namespace
}  // namespace pdos
