// Large-scale fast path: express ACK lane, event fusion, flat hot state.
//
// Two contracts from DESIGN.md §11:
//   1. `fast_path` changes the event plumbing, never the packets — a
//      scenario run with and without it must agree on every packet-level
//      output (goodput, drops, timeouts, jitter), while executing far
//      fewer scheduler events.
//   2. The per-flow hot path at N = 1000 — hot-slot updates, delivery
//      tracers into StatsHub's flat meter table, delayed-ACK timer churn,
//      express-lane ACK carriage — performs ZERO heap allocations at
//      steady state, verified with a counting global operator new.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/experiment.hpp"
#include "net/link.hpp"
#include "stats/stats_hub.hpp"
#include "tcp/flow_state.hpp"
#include "tcp/tcp_receiver.hpp"

namespace {

std::size_t g_new_calls = 0;

}  // namespace

// Counting global allocator hooks (single-threaded test binary). GCC's
// -Wmismatched-new-delete pairs allocation sites with the *named* standard
// operators, not with these replacements, so it cannot see that new, new[],
// delete, and delete[] below all share one malloc/free pool — silence the
// resulting false positive (CI builds with -Werror).
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdos {
namespace {

TEST(LargeScaleTest, FastPathIsPacketIdenticalToFullPath) {
  // Moderate size so the full path stays cheap; the equality is exact, not
  // statistical, because fusion and the express lane preserve every packet
  // timing, queue decision, and RNG draw.
  ScenarioConfig config = ScenarioConfig::large_scale(16, mbps(15));
  const PulseTrain train =
      PulseTrain::from_gamma(ms(50), mbps(25), 0.3, config.bottleneck);
  RunControl control;
  control.warmup = sec(2.0);
  control.measure = sec(6.0);

  ScenarioConfig full = config;
  full.fast_path = false;
  const RunResult fast = run_scenario(config, train, control);
  const RunResult slow = run_scenario(full, train, control);

  EXPECT_EQ(fast.per_flow_goodput, slow.per_flow_goodput);
  EXPECT_EQ(fast.goodput_bytes, slow.goodput_bytes);
  EXPECT_EQ(fast.fairness_index, slow.fairness_index);
  EXPECT_EQ(fast.incoming_bins, slow.incoming_bins);
  EXPECT_EQ(fast.attack_bins, slow.attack_bins);
  EXPECT_EQ(fast.bottleneck_queue.dropped, slow.bottleneck_queue.dropped);
  EXPECT_EQ(fast.bottleneck_queue.enqueued, slow.bottleneck_queue.enqueued);
  EXPECT_EQ(fast.red_early_drops, slow.red_early_drops);
  EXPECT_EQ(fast.red_forced_drops, slow.red_forced_drops);
  EXPECT_EQ(fast.total_timeouts, slow.total_timeouts);
  EXPECT_EQ(fast.total_retransmits, slow.total_retransmits);
  EXPECT_EQ(fast.mean_delivery_jitter, slow.mean_delivery_jitter);
  EXPECT_EQ(fast.attack_packets_sent, slow.attack_packets_sent);
  // The point of the exercise: the same packets, far fewer events.
  EXPECT_LT(fast.events_executed, slow.events_executed);
}

TEST(LargeScaleTest, LargeScaleConfigScalesBufferWithRate) {
  const ScenarioConfig base = ScenarioConfig::large_scale(250, mbps(155));
  EXPECT_TRUE(base.fast_path);
  EXPECT_EQ(base.num_flows, 250);
  EXPECT_EQ(base.buffer_packets,
            static_cast<std::size_t>(240.0 * mbps(155) / mbps(15)));
  const ScenarioConfig gig = ScenarioConfig::large_scale(1000);
  EXPECT_EQ(gig.buffer_packets, 16000u);
  EXPECT_EQ(static_cast<int>(gig.rtts.size()), 1000);
  gig.validate();
}

TEST(LargeScaleTest, ThousandFlowStatsPathIsAllocationFreeAtSteadyState) {
  constexpr int kFlows = 1000;
  constexpr int kWarmRounds = 60;
  constexpr int kMeasuredRounds = 60;

  Simulator sim(11);
  sim.reserve_events(4 * kFlows);
  StatsHub hub(ms(100), sec(10));
  hub.register_flows(kFlows);

  struct NullSink : PacketHandler {
    void handle(Packet) override {}
  };
  auto* sink = sim.make<NullSink>();

  // N receivers on flat hot slots, each ACKing through its own express
  // lane and tracing deliveries into the hub's flat meter table. Delayed
  // ACKs (d = 2) keep the delack timer arming/cancelling every round.
  TcpReceiverHot* hot =
      sim.make_array<TcpReceiverHot>(kFlows, sim.memory());
  TcpReceiverConfig rx_config;
  rx_config.delack_factor = 2;
  std::vector<TcpReceiver*> receivers;
  receivers.reserve(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    auto* ack_lane = sim.make<Link>(sim, "ack", mbps(50), ms(10),
                                    static_cast<PacketHandler*>(sink));
    auto* rx = sim.make<TcpReceiver>(sim, FlowId{i}, NodeId{i},
                                     NodeId{kFlows + i}, ack_lane, rx_config,
                                     &hot[i]);
    rx->set_delivery_tracer(
        [hub_ptr = &hub, i](Time t, std::int64_t) {
          hub_ptr->on_delivery(static_cast<std::size_t>(i), t);
        });
    receivers.push_back(rx);
  }

  // One round = the next in-order segment delivered to all N receivers.
  struct Round {
    Simulator& sim;
    std::vector<TcpReceiver*>& rx;
    std::int64_t seq;
    int remaining;
    void operator()() const {
      for (auto* receiver : rx) {
        Packet pkt;
        pkt.type = PacketType::kTcpData;
        pkt.seq = seq;
        pkt.size_bytes = 1040;
        pkt.ts_echo = sim.now();
        receiver->handle(pkt);
      }
      if (remaining > 1) {
        sim.schedule(ms(10), Round{sim, rx, seq + 1, remaining - 1});
      }
    }
  };
  static_assert(sizeof(Round) <= kInlineFnCapacity,
                "driver must stay an inline closure");

  // Warm-up: grow scheduler slabs, express-lane rings, and every meter.
  sim.schedule(0.0, Round{sim, receivers, 0, kWarmRounds});
  sim.run();
  ASSERT_EQ(hot[0].next_expected, kWarmRounds);
  ASSERT_GT(hub.flow_meter(0).samples(), 0u);

  const std::size_t before = g_new_calls;
  sim.schedule(0.0, Round{sim, receivers, kWarmRounds, kMeasuredRounds});
  sim.run();
  const std::size_t after = g_new_calls;

  EXPECT_EQ(hot[kFlows - 1].next_expected, kWarmRounds + kMeasuredRounds);
  EXPECT_EQ(after - before, 0u)
      << "per-flow stats + hot-state path must not allocate at N=1000";
}

}  // namespace
}  // namespace pdos
