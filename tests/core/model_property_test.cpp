// Broad property sweeps over the analytical model, complementing the
// pinned-value tests in model_test.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "attack/pulse.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"

namespace pdos {
namespace {

VictimProfile victim_of(int flows, Time rtt_lo, Time rtt_hi,
                        BitRate rbottle) {
  VictimProfile victim;
  victim.aimd = AimdParams::new_reno();
  victim.spacket = 1040;
  victim.rbottle = rbottle;
  victim.rtts = VictimProfile::even_rtts(flows, rtt_lo, rtt_hi);
  return victim;
}

// ---------- Γ(γ) monotonicity and bounds across victim profiles ----------

class DegradationSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(DegradationSweep, GammaDegradationIsMonotoneIncreasingInGamma) {
  const auto [flows, rattack_mbps] = GetParam();
  const VictimProfile victim = victim_of(flows, ms(20), ms(460), mbps(15));
  const double c_attack = mbps(rattack_mbps) / victim.rbottle;
  const Time textent = ms(50);
  double prev = -1.0;
  for (double gamma = 0.05; gamma < 1.0; gamma += 0.05) {
    const Time period = textent * c_attack / gamma;
    const double deg = throughput_degradation(victim, period);
    EXPECT_GE(deg, prev - 1e-12) << "gamma=" << gamma;
    EXPECT_GE(deg, 0.0);
    EXPECT_LE(deg, 1.0);
    prev = deg;
  }
}

TEST_P(DegradationSweep, MoreFlowsNeverReduceCpsi) {
  const auto [flows, rattack_mbps] = GetParam();
  const VictimProfile fewer = victim_of(flows, ms(20), ms(460), mbps(15));
  const VictimProfile more =
      victim_of(flows + 10, ms(20), ms(460), mbps(15));
  const double c_attack = mbps(rattack_mbps) / mbps(15);
  EXPECT_GT(c_psi(more, ms(50), c_attack), c_psi(fewer, ms(50), c_attack));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DegradationSweep,
    ::testing::Combine(::testing::Values(5, 15, 45),
                       ::testing::Values(25.0, 40.0)));

// ---------- scaling laws ----------

TEST(ModelScalingTest, FasterBottleneckIsHarderToDegrade) {
  double prev = std::numeric_limits<double>::infinity();
  for (double rb : {5.0, 10.0, 15.0, 30.0}) {
    const VictimProfile victim = victim_of(15, ms(20), ms(460), mbps(rb));
    const double cpsi = c_psi(victim, ms(50), 25.0 / rb);
    EXPECT_LT(cpsi, prev) << "rbottle=" << rb;
    prev = cpsi;
  }
}

TEST(ModelScalingTest, ShorterRttsAreMoreResilient) {
  // Small-RTT flows recover faster: Σ1/RTT² grows, C_Ψ grows, attainable
  // gain falls.
  const VictimProfile slow = victim_of(15, ms(200), ms(460), mbps(15));
  const VictimProfile fast = victim_of(15, ms(20), ms(100), mbps(15));
  const double cp_slow = c_psi(slow, ms(50), 25.0 / 15.0);
  const double cp_fast = c_psi(fast, ms(50), 25.0 / 15.0);
  EXPECT_GT(cp_fast, cp_slow);
  if (cp_fast < 1.0 && cp_slow < 1.0) {
    EXPECT_LT(optimal_gain(cp_fast, 1.0), optimal_gain(cp_slow, 1.0));
  }
}

TEST(ModelScalingTest, DelayedAcksHalveCpsi) {
  // d sits in Eq. (11)'s denominator: delayed ACKs (d = 2) slow the
  // victims' recovery, halving C_Ψ — the attacker's job gets easier.
  VictimProfile d1 = victim_of(15, ms(20), ms(460), mbps(15));
  VictimProfile d2 = d1;
  d2.aimd = AimdParams::new_reno_delack();
  EXPECT_NEAR(c_psi(d2, ms(50), 1.0), c_psi(d1, ms(50), 1.0) / 2.0, 1e-12);
}

TEST(ModelScalingTest, GentlerDecreaseRaisesResilience) {
  // Larger b (shallower multiplicative decrease) means the flow retains
  // more window per pulse: the b-dependent factor (1+b)/(1-b) grows, so
  // C_Ψ grows and the attacker's attainable gain falls.
  VictimProfile victim = victim_of(15, ms(20), ms(460), mbps(15));
  double prev = 0.0;
  for (double b : {0.3, 0.5, 0.7, 0.9}) {
    victim.aimd.b = b;
    const double cpsi = c_psi(victim, ms(50), 1.0);
    EXPECT_GT(cpsi, prev) << "b=" << b;
    prev = cpsi;
  }
}

// ---------- consistency across the γ / T_AIMD parameterizations ----------

TEST(ModelConsistencyTest, GammaAndPeriodParameterizationsAgree) {
  const VictimProfile victim = victim_of(15, ms(20), ms(460), mbps(15));
  const Time textent = ms(75);
  const double c_attack = 2.0;
  const double cpsi = c_psi(victim, textent, c_attack);
  for (double gamma = std::max(0.1, cpsi + 0.01); gamma < 1.0;
       gamma += 0.1) {
    const PulseTrain train =
        PulseTrain::from_gamma(textent, c_attack * victim.rbottle, gamma,
                               victim.rbottle);
    EXPECT_NEAR(throughput_degradation(victim, train.period()),
                1.0 - cpsi / gamma, 1e-9)
        << "gamma=" << gamma;
    EXPECT_NEAR(train.mu(), c_attack / gamma - 1.0, 1e-9);
  }
}

TEST(ModelConsistencyTest, OptimalPlanMaximizesOverDenseGrid) {
  const VictimProfile victim = victim_of(25, ms(20), ms(460), mbps(15));
  const double cpsi = c_psi(victim, ms(50), 30.0 / 15.0);
  ASSERT_LT(cpsi, 1.0);
  for (double kappa : {0.4, 1.0, 2.7}) {
    const double gstar = optimal_gamma(cpsi, kappa);
    const double best = attack_gain(gstar, cpsi, kappa);
    for (double gamma = cpsi + 1e-3; gamma < 1.0; gamma += 1e-3) {
      ASSERT_LE(attack_gain(gamma, cpsi, kappa), best + 1e-12)
          << "kappa=" << kappa << " gamma=" << gamma;
    }
  }
}

}  // namespace
}  // namespace pdos
