#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

// Proposition 3's printed form, evaluated directly (valid for kappa not too
// close to 0); used to verify the stable rationalized form we ship.
double eq13_printed(double cpsi, double kappa) {
  const double omk = 1.0 - kappa;
  return (cpsi * omk - std::sqrt(cpsi * cpsi * omk * omk +
                                 4.0 * kappa * cpsi)) /
         (-2.0 * kappa);
}

TEST(Eq13Test, MatchesPrintedFormula) {
  for (double cpsi : {0.05, 0.2, 0.5, 0.9}) {
    for (double kappa : {0.3, 0.7, 1.0, 1.5, 3.0, 10.0}) {
      EXPECT_NEAR(optimal_gamma(cpsi, kappa), eq13_printed(cpsi, kappa),
                  1e-12)
          << "cpsi=" << cpsi << " kappa=" << kappa;
    }
  }
}

TEST(Corollary3Test, RiskNeutralOptimumIsSqrtCpsi) {
  for (double cpsi : {0.01, 0.1, 0.25, 0.5, 0.81}) {
    EXPECT_NEAR(optimal_gamma(cpsi, 1.0), std::sqrt(cpsi), 1e-12);
    EXPECT_NEAR(optimal_gamma_risk_neutral(cpsi), std::sqrt(cpsi), 1e-12);
  }
}

TEST(Corollary1Test, RiskAverseLimitIsCpsi) {
  // lim_{kappa -> inf} gamma* = C_Psi.
  const double cpsi = 0.3;
  double prev = optimal_gamma(cpsi, 1.0);
  for (double kappa : {10.0, 100.0, 1000.0, 1e6}) {
    const double g = optimal_gamma(cpsi, kappa);
    EXPECT_LT(g, prev);  // monotonically approaching from above
    prev = g;
  }
  EXPECT_NEAR(optimal_gamma(cpsi, 1e9), cpsi, 1e-6);
}

TEST(Corollary2Test, RiskLovingLimitIsOne) {
  const double cpsi = 0.3;
  double prev = optimal_gamma(cpsi, 1.0);
  for (double kappa : {0.5, 0.1, 0.01, 1e-6}) {
    const double g = optimal_gamma(cpsi, kappa);
    EXPECT_GT(g, prev);
    prev = g;
  }
  EXPECT_NEAR(optimal_gamma(cpsi, 1e-12), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(optimal_gamma(cpsi, 0.0), 1.0);
}

TEST(Prop3Test, OptimumLiesInFeasibleInterval) {
  for (double cpsi = 0.02; cpsi < 1.0; cpsi += 0.07) {
    for (double kappa : {0.1, 0.5, 1.0, 2.0, 8.0}) {
      const double g = optimal_gamma(cpsi, kappa);
      EXPECT_GT(g, cpsi) << "cpsi=" << cpsi << " kappa=" << kappa;
      EXPECT_LT(g, 1.0) << "cpsi=" << cpsi << " kappa=" << kappa;
    }
  }
}

TEST(Prop3Test, StationaryPointOfGain) {
  // dG/dgamma = 0 at gamma* (central difference).
  for (double cpsi : {0.1, 0.4}) {
    for (double kappa : {0.5, 1.0, 2.5}) {
      const double g = optimal_gamma(cpsi, kappa);
      const double h = 1e-6;
      const double deriv = (attack_gain(g + h, cpsi, kappa) -
                            attack_gain(g - h, cpsi, kappa)) /
                           (2.0 * h);
      EXPECT_NEAR(deriv, 0.0, 1e-4) << "cpsi=" << cpsi << " kappa=" << kappa;
    }
  }
}

TEST(Prop3Test, GlobalMaximumOnGrid) {
  for (double cpsi : {0.15, 0.35}) {
    for (double kappa : {0.6, 1.0, 3.0}) {
      const double gstar = optimal_gamma(cpsi, kappa);
      const double best = attack_gain(gstar, cpsi, kappa);
      for (double g = cpsi + 0.001; g < 1.0; g += 0.001) {
        EXPECT_LE(attack_gain(g, cpsi, kappa), best + 1e-12)
            << "cpsi=" << cpsi << " kappa=" << kappa << " gamma=" << g;
      }
    }
  }
}

TEST(NumericTest, GoldenSectionAgreesWithClosedForm) {
  for (double cpsi : {0.05, 0.25, 0.6}) {
    for (double kappa : {0.2, 1.0, 4.0}) {
      EXPECT_NEAR(optimal_gamma_numeric(cpsi, kappa),
                  optimal_gamma(cpsi, kappa), 1e-6)
          << "cpsi=" << cpsi << " kappa=" << kappa;
    }
  }
}

TEST(NumericTest, GoldenSectionFindsParabolaPeak) {
  const double peak = golden_section_max(
      [](double x) { return -(x - 0.37) * (x - 0.37); }, 0.0, 1.0);
  EXPECT_NEAR(peak, 0.37, 1e-7);
}

TEST(Prop4Test, ExactMuReconstructsGammaStar) {
  const double cpsi = 0.2;
  const double kappa = 1.0;
  const double c_attack = 25.0 / 15.0;
  const double mu = optimal_mu_exact(c_attack, cpsi, kappa);
  // gamma = C_attack / (1 + mu)  (Eq. 7).
  EXPECT_NEAR(c_attack / (1.0 + mu), optimal_gamma(cpsi, kappa), 1e-12);
}

TEST(Prop4Test, PaperMuIsExactPlusOne) {
  const double c_attack = 2.0;
  for (double cpsi : {0.1, 0.3}) {
    for (double kappa : {0.5, 1.0, 2.0}) {
      EXPECT_NEAR(optimal_mu_paper(c_attack, cpsi, kappa),
                  optimal_mu_exact(c_attack, cpsi, kappa) + 1.0, 1e-12);
    }
  }
}

TEST(Corollary4Test, RiskNeutralMuViaCvictim) {
  // mu = sqrt(C_attack / (T_extent * C_victim)) must equal
  // C_attack / sqrt(C_Psi) with C_Psi = T_extent * C_attack * C_victim.
  const double c_attack = 25.0 / 15.0;
  const Time textent = ms(50);
  const double cvictim = 2.7;
  const double cpsi = textent * c_attack * cvictim;
  ASSERT_LT(cpsi, 1.0);
  EXPECT_NEAR(optimal_mu_risk_neutral_paper(c_attack, textent, cvictim),
              optimal_mu_paper(c_attack, cpsi, 1.0), 1e-9);
}

TEST(OptimalGainTest, DecreasesWithRiskAversion) {
  const double cpsi = 0.2;
  double prev = 2.0;
  for (double kappa : {0.2, 0.5, 1.0, 2.0, 5.0}) {
    const double g = optimal_gain(cpsi, kappa);
    EXPECT_LT(g, prev) << "kappa=" << kappa;
    EXPECT_GT(g, 0.0);
    prev = g;
  }
}

TEST(OptimalGainTest, DecreasesWithCpsi) {
  // A harder-to-degrade victim (larger C_Psi) yields less attainable gain.
  double prev = 2.0;
  for (double cpsi : {0.05, 0.15, 0.35, 0.7}) {
    const double g = optimal_gain(cpsi, 1.0);
    EXPECT_LT(g, prev) << "cpsi=" << cpsi;
    prev = g;
  }
}

TEST(OptimizerValidationTest, DomainErrors) {
  EXPECT_THROW(optimal_gamma(0.0, 1.0), ParameterError);
  EXPECT_THROW(optimal_gamma(1.0, 1.0), ParameterError);
  EXPECT_THROW(optimal_gamma(0.5, -1.0), ParameterError);
  EXPECT_THROW(optimal_mu_exact(0.0, 0.5, 1.0), ParameterError);
  EXPECT_THROW(golden_section_max([](double x) { return x; }, 1.0, 0.0),
               ParameterError);
  // Risk-neutral gamma* = sqrt(0.04) = 0.2 > C_attack = 0.1: infeasible mu.
  EXPECT_THROW(optimal_mu_exact(0.1, 0.04, 1.0), ParameterError);
}

/// Property sweep: closed form vs numeric across the (C_Psi, kappa) grid.
class OptimalGammaSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(OptimalGammaSweep, ClosedFormIsTheArgmax) {
  const auto [cpsi, kappa] = GetParam();
  const double gstar = optimal_gamma(cpsi, kappa);
  EXPECT_NEAR(optimal_gamma_numeric(cpsi, kappa), gstar, 1e-6);
  EXPECT_GT(gstar, cpsi);
  EXPECT_LT(gstar, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptimalGammaSweep,
    ::testing::Combine(::testing::Values(0.02, 0.1, 0.3, 0.5, 0.8, 0.95),
                       ::testing::Values(0.05, 0.3, 1.0, 2.0, 10.0, 50.0)));

}  // namespace
}  // namespace pdos
