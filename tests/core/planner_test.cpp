#include "core/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

AttackPlanRequest paper_request() {
  AttackPlanRequest request;
  request.victim.aimd = AimdParams::new_reno();
  request.victim.spacket = 1040;
  request.victim.rbottle = mbps(15);
  request.victim.rtts = VictimProfile::even_rtts(15, ms(20), ms(460));
  request.textent = ms(50);
  request.rattack = mbps(25);
  request.kappa = 1.0;
  return request;
}

TEST(PlannerTest, PlansAtTheClosedFormOptimum) {
  const AttackPlanRequest request = paper_request();
  const AttackPlan plan = plan_attack(request);
  const double c_attack = 25.0 / 15.0;
  const double cpsi = c_psi(request.victim, request.textent, c_attack);
  EXPECT_NEAR(plan.gamma, optimal_gamma(cpsi, 1.0), 1e-12);
  EXPECT_NEAR(plan.c_psi, cpsi, 1e-12);
  EXPECT_FALSE(plan.gamma_clamped);
}

TEST(PlannerTest, TrainRealizesPlannedGamma) {
  const AttackPlan plan = plan_attack(paper_request());
  EXPECT_NEAR(plan.train.gamma(mbps(15)), plan.gamma, 1e-9);
  EXPECT_DOUBLE_EQ(plan.train.textent, ms(50));
  EXPECT_DOUBLE_EQ(plan.train.rattack, mbps(25));
  EXPECT_NEAR(plan.mu, plan.train.tspace / plan.train.textent, 1e-12);
}

TEST(PlannerTest, PredictionsAreConsistentWithModel) {
  const AttackPlanRequest request = paper_request();
  const AttackPlan plan = plan_attack(request);
  EXPECT_NEAR(plan.predicted_degradation, 1.0 - plan.c_psi / plan.gamma,
              1e-9);
  EXPECT_NEAR(plan.predicted_gain,
              attack_gain(plan.gamma, plan.c_psi, request.kappa), 1e-12);
  ASSERT_EQ(plan.converged_cwnds.size(), request.victim.rtts.size());
  for (std::size_t i = 0; i < plan.converged_cwnds.size(); ++i) {
    EXPECT_NEAR(plan.converged_cwnds[i],
                converged_cwnd(request.victim.aimd, plan.train.period(),
                               request.victim.rtts[i]),
                1e-9);
  }
}

TEST(PlannerTest, RiskAversePlansLowerGamma) {
  AttackPlanRequest request = paper_request();
  request.kappa = 5.0;
  const AttackPlan averse = plan_attack(request);
  request.kappa = 0.3;
  const AttackPlan loving = plan_attack(request);
  EXPECT_LT(averse.gamma, loving.gamma);
  EXPECT_LT(averse.train.average_rate(), loving.train.average_rate());
  EXPECT_EQ(averse.risk_class, RiskClass::kRiskAverse);
  EXPECT_EQ(loving.risk_class, RiskClass::kRiskLoving);
}

TEST(PlannerTest, ClampsGammaWhenPulseRateTooLow) {
  AttackPlanRequest request = paper_request();
  // C_attack = 6/15 = 0.4, but the unconstrained optimum for a risk-loving
  // attacker approaches 1: must clamp to C_attack.
  request.rattack = mbps(6);
  request.kappa = 0.01;
  const AttackPlan plan = plan_attack(request);
  EXPECT_TRUE(plan.gamma_clamped);
  EXPECT_NEAR(plan.gamma, 0.4, 1e-9);
  EXPECT_GT(plan.gamma_unclamped, plan.gamma);
  EXPECT_NEAR(plan.train.tspace, 0.0, 1e-9);  // degenerated to flooding
}

TEST(PlannerTest, FlagsShrewCollision) {
  AttackPlanRequest request = paper_request();
  request.victim_min_rto = sec(1.0);
  // Force a period of exactly minRTO/2 = 500 ms (a Fig. 10 marked point).
  const double c_attack = 25.0 / 15.0;
  const double gamma = ms(50) * c_attack / 0.5;
  const AttackPlan plan = plan_attack_at_gamma(request, gamma);
  ASSERT_TRUE(plan.shrew_harmonic.has_value());
  EXPECT_EQ(*plan.shrew_harmonic, 2);
  EXPECT_NE(plan.summary().find("shrew"), std::string::npos);
}

TEST(PlannerTest, HigherHarmonicsNotFlagged) {
  // minRTO/6 is too fast to realign with backed-off RTOs; no flag.
  AttackPlanRequest request = paper_request();
  request.victim_min_rto = sec(1.0);
  const double c_attack = 25.0 / 15.0;
  const double gamma = ms(50) * c_attack / (1.0 / 6.0);
  const AttackPlan plan = plan_attack_at_gamma(request, gamma);
  EXPECT_FALSE(plan.shrew_harmonic.has_value());
}

TEST(PlannerTest, NoShrewFlagWithoutMinRto) {
  const AttackPlan plan = plan_attack(paper_request());
  EXPECT_FALSE(plan.shrew_harmonic.has_value());
}

TEST(PlannerTest, AtGammaRespectsDomain) {
  const AttackPlanRequest request = paper_request();
  EXPECT_THROW(plan_attack_at_gamma(request, 0.0), ParameterError);
  EXPECT_THROW(plan_attack_at_gamma(request, 1.7), ParameterError);
  const AttackPlan plan = plan_attack_at_gamma(request, 0.5);
  EXPECT_NEAR(plan.train.gamma(mbps(15)), 0.5, 1e-9);
}

TEST(PlannerTest, InfeasibleCpsiThrows) {
  AttackPlanRequest request = paper_request();
  request.textent = sec(2.0);  // gigantic pulses: C_Psi > 1
  request.rattack = mbps(45);
  EXPECT_THROW(plan_attack(request), ParameterError);
}

TEST(PlannerTest, RequestValidation) {
  AttackPlanRequest request = paper_request();
  request.textent = 0.0;
  EXPECT_THROW(plan_attack(request), ParameterError);
  request = paper_request();
  request.victim.rtts.clear();
  EXPECT_THROW(plan_attack(request), ParameterError);
  request = paper_request();
  request.victim_min_rto = 0.0;
  EXPECT_THROW(plan_attack(request), ParameterError);
}

TEST(PlannerTest, SummaryMentionsKeyNumbers) {
  const AttackPlan plan = plan_attack(paper_request());
  const std::string s = plan.summary();
  EXPECT_NE(s.find("risk-neutral"), std::string::npos);
  EXPECT_NE(s.find("gamma="), std::string::npos);
  EXPECT_NE(s.find("T_space="), std::string::npos);
}

TEST(PlannerTest, HigherKappaNeverIncreasesPlannedAverageRate) {
  // Property: planned average attack rate is monotone non-increasing in
  // kappa (more risk aversion -> stealthier attack).
  const AttackPlanRequest base = paper_request();
  double prev_rate = 1e18;
  for (double kappa : {0.1, 0.3, 1.0, 2.0, 5.0, 20.0}) {
    AttackPlanRequest request = base;
    request.kappa = kappa;
    const AttackPlan plan = plan_attack(request);
    EXPECT_LE(plan.train.average_rate(), prev_rate + 1.0);
    prev_rate = plan.train.average_rate();
  }
}

}  // namespace
}  // namespace pdos
