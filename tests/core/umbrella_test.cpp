// The umbrella header must expose the entire public API: this test
// compiles one representative use of every layer through pdos/pdos.hpp
// alone.
#include "pdos/pdos.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pdos {
namespace {

TEST(UmbrellaTest, EveryLayerReachable) {
  // util
  static_assert(mbps(15) == 15e6);
  Rng rng(1);
  (void)rng.uniform();

  // sim
  Simulator sim(1);
  int fired = 0;
  sim.schedule(ms(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);

  // net
  DropTailQueue droptail(4);
  RedQueue red(RedParams::paper_testbed(100), Rng(2));
  Packet pkt;
  pkt.size_bytes = 100;
  EXPECT_TRUE(droptail.enqueue(pkt));

  // tcp
  const AimdParams aimd = AimdParams::new_reno();
  EXPECT_DOUBLE_EQ(aimd.b, 0.5);
  EXPECT_STREQ(tcp_variant_name(TcpVariant::kNewReno), "NewReno");

  // attack
  const PulseTrain train =
      PulseTrain::from_gamma(ms(50), mbps(25), 0.5, mbps(15));
  EXPECT_NEAR(train.gamma(mbps(15)), 0.5, 1e-12);
  EXPECT_EQ(split_train(train, 2).size(), 2u);
  EXPECT_DOUBLE_EQ(shrew_period(sec(1), 2), 0.5);

  // traffic
  struct Sink : PacketHandler {
    void handle(Packet) override {}
  } sink;
  CbrSource cbr(sim, mbps(1), 1000, 1, 2, &sink);

  // stats
  EXPECT_EQ(paa({1.0, 1.0, 3.0, 3.0}, 2), (std::vector<double>{1.0, 3.0}));
  JitterMeter jitter;
  jitter.observe(0.0);

  // detect
  RateAnomalyDetector rate_detector(RateDetectorConfig{});
  DtwPulseDetector dtw(DtwDetectorConfig{});

  // io
  std::ostringstream os;
  CsvWriter csv(os, {"a"});
  csv.row({1.0});

  // core
  const ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(5);
  const VictimProfile victim = scenario.victim_profile();
  EXPECT_GT(c_victim(victim), 0.0);
  EXPECT_GT(optimal_gamma(0.2, 1.0), 0.0);
  const TimeoutModelParams ext;
  EXPECT_GE(throughput_degradation_ext(victim, sec(1.0), ext), 0.0);
}

}  // namespace
}  // namespace pdos
