#include "core/timeout_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

VictimProfile ns2_victim(int flows = 15) {
  VictimProfile victim;
  victim.aimd = AimdParams::new_reno();
  victim.spacket = 1040;
  victim.rbottle = mbps(15);
  victim.rtts = VictimProfile::even_rtts(flows, ms(20), ms(460));
  return victim;
}

TimeoutModelParams ns2_params() {
  TimeoutModelParams params;
  params.min_rto = sec(1.0);
  return params;
}

TEST(TimeoutBoundTest, SmallWindowMeansTimeoutBound) {
  const AimdParams aimd = AimdParams::new_reno();
  // W∞ = 2 * T / RTT; threshold is dupack_threshold + 1 = 4.
  // T = 100 ms, RTT = 20 ms -> W∞ = 10: fine.
  EXPECT_FALSE(flow_is_timeout_bound(aimd, ms(100), ms(20), 3));
  // T = 100 ms, RTT = 100 ms -> W∞ = 2: timeout-bound.
  EXPECT_TRUE(flow_is_timeout_bound(aimd, ms(100), ms(100), 3));
  // Boundary: W∞ = 4 exactly -> not bound (needs strict <).
  EXPECT_FALSE(flow_is_timeout_bound(aimd, ms(200), ms(100), 3));
}

TEST(BurstLossTest, ThresholdIsBufferPlusDrain) {
  PulseContext ctx;
  ctx.textent = ms(100);
  ctx.buffer_bytes = 250000;
  // Drain at 15 Mbps over 100 ms = 187.5 kB; threshold = 437.5 kB.
  ctx.rattack = mbps(34);  // 425 kB injected: below
  EXPECT_FALSE(pulses_cause_burst_loss(ctx, mbps(15)));
  ctx.rattack = mbps(36);  // 450 kB injected: above
  EXPECT_TRUE(pulses_cause_burst_loss(ctx, mbps(15)));
}

TEST(BurstLossTest, UnknownBufferDisablesDetection) {
  PulseContext ctx;
  ctx.textent = ms(100);
  ctx.rattack = mbps(500);
  ctx.buffer_bytes = 0;
  EXPECT_FALSE(pulses_cause_burst_loss(ctx, mbps(15)));
}

TEST(ClassifyTest, RegimePriority) {
  const VictimProfile victim = ns2_victim();
  const TimeoutModelParams params = ns2_params();
  // Burst loss dominates everything.
  PulseContext burst{ms(100), mbps(100), 100000};
  EXPECT_EQ(classify_flow(victim, ms(700), ms(20), params, burst),
            FlowRegime::kBurstLoss);
  // Shrew alignment at T = 1 s (no burst context).
  EXPECT_EQ(classify_flow(victim, sec(1.0), ms(20), params, std::nullopt),
            FlowRegime::kShrewPinned);
  // Small window: T = 150 ms, RTT = 460 ms.
  EXPECT_EQ(classify_flow(victim, ms(150), ms(460), params, std::nullopt),
            FlowRegime::kSmallWindow);
  // Healthy: T = 700 ms (not a harmonic), RTT = 20 ms.
  EXPECT_EQ(classify_flow(victim, ms(700), ms(20), params, std::nullopt),
            FlowRegime::kFastRecovery);
}

TEST(RampTest, PinnedWhilePeriodBelowRto) {
  const TimeoutModelParams params = ns2_params();
  EXPECT_DOUBLE_EQ(timeout_bound_flow_packets(AimdParams::new_reno(),
                                              ms(900), ms(50), params, 1e9),
                   0.0);
  EXPECT_DOUBLE_EQ(timeout_bound_flow_packets(AimdParams::new_reno(),
                                              sec(1.0), ms(50), params, 1e9),
                   0.0);
}

TEST(RampTest, SlowStartGrowthAfterRto) {
  const TimeoutModelParams params = ns2_params();
  // available = 0.5 s, RTT = 100 ms -> 5 RTTs -> 2^5 - 1 = 31 packets.
  EXPECT_NEAR(timeout_bound_flow_packets(AimdParams::new_reno(), sec(1.5),
                                         ms(100), params, 1e9),
              31.0, 1e-6);
}

TEST(RampTest, ClampBoundaryIsExactPowerOfTwo) {
  // The 2^k slow-start ramp clamps at k = 40 and now short-circuits the
  // clamped and whole-RTT exponents through std::ldexp. Pin the values on
  // both sides of the boundary: the replacement must agree bit-for-bit with
  // the old std::pow(2.0, min(k, 40)) - 1.0.
  const TimeoutModelParams params = ns2_params();
  const AimdParams aimd = AimdParams::new_reno();
  const Time rtt = sec(0.25);
  const double cap = 1e18;  // never binding here
  // available = t_aimd - min_rto; rtts = available / rtt (exact below).
  // rtts = 40: exactly at the clamp -> 2^40 - 1.
  EXPECT_DOUBLE_EQ(
      timeout_bound_flow_packets(aimd, params.min_rto + sec(10.0), rtt,
                                 params, cap),
      1099511627775.0);
  // rtts = 80: beyond the clamp -> still 2^40 - 1.
  EXPECT_DOUBLE_EQ(
      timeout_bound_flow_packets(aimd, params.min_rto + sec(20.0), rtt,
                                 params, cap),
      1099511627775.0);
  // rtts = 39: last whole exponent under the clamp -> 2^39 - 1.
  EXPECT_DOUBLE_EQ(
      timeout_bound_flow_packets(aimd, params.min_rto + sec(9.75), rtt,
                                 params, cap),
      549755813887.0);
  // Fractional exponents keep the libm pow() path bit-for-bit.
  const Time frac_avail = sec(9.8125);  // rtts = 39.25
  EXPECT_EQ(timeout_bound_flow_packets(aimd, params.min_rto + frac_avail,
                                       rtt, params, cap),
            std::pow(2.0, 39.25) - 1.0);
}

TEST(RampTest, LdexpMatchesPowForWholeExponents) {
  // Every whole exponent the integral fast path can take must match the old
  // pow() computation exactly.
  for (int k = 1; k <= 40; ++k) {
    EXPECT_EQ(std::ldexp(1.0, k) - 1.0,
              std::pow(2.0, static_cast<double>(k)) - 1.0)
        << "k=" << k;
  }
}

TEST(RampTest, ShareCapBounds) {
  const TimeoutModelParams params = ns2_params();
  EXPECT_DOUBLE_EQ(timeout_bound_flow_packets(AimdParams::new_reno(),
                                              sec(3.0), ms(10), params, 50.0),
                   50.0);
}

TEST(ExtModelTest, DegeneratesToBaseWhenNoTimeouts) {
  // A period where every flow's W∞ >= 4 and nothing aligns with minRTO:
  // the extension must reproduce Eq. (10) exactly.
  VictimProfile victim = ns2_victim();
  victim.rtts = VictimProfile::even_rtts(15, ms(20), ms(120));
  const Time period = ms(700);  // W∞ range: 11.7 .. 70; not a harmonic
  const TimeoutModelParams params = ns2_params();
  EXPECT_EQ(timeout_bound_flow_count(victim, period, params), 0);
  EXPECT_NEAR(throughput_degradation_ext(victim, period, params),
              throughput_degradation(victim, period), 1e-12);
}

TEST(ExtModelTest, ShrewPeriodPredictsMoreDamageThanBase) {
  const VictimProfile victim = ns2_victim();
  const TimeoutModelParams params = ns2_params();
  // At T = minRTO the base model predicts ~no damage; the extension must
  // predict substantial damage.
  const double base = throughput_degradation(victim, sec(1.0));
  const double ext = throughput_degradation_ext(victim, sec(1.0), params);
  EXPECT_LT(base, 0.1);
  EXPECT_GT(ext, base + 0.3);
}

TEST(ExtModelTest, BurstLossPredictsNearTotalDenial) {
  const VictimProfile victim = ns2_victim();
  TimeoutModelParams params = ns2_params();
  params.survival_probability = 0.0;  // every pulse hits every flow
  const PulseContext ctx{ms(100), mbps(100), 100000};
  // Period below RTO: all flows pinned, zero throughput -> Gamma = 1.
  EXPECT_NEAR(throughput_degradation_ext(victim, ms(800), params, ctx), 1.0,
              1e-9);
}

TEST(ExtModelTest, SurvivalProbabilityInterpolates) {
  const VictimProfile victim = ns2_victim();
  const PulseContext ctx{ms(100), mbps(100), 100000};
  TimeoutModelParams params = ns2_params();
  double prev = 2.0;
  for (double s : {0.0, 0.3, 0.6, 1.0}) {
    params.survival_probability = s;
    const double gamma_deg =
        throughput_degradation_ext(victim, ms(800), params, ctx);
    EXPECT_LE(gamma_deg, prev + 1e-12) << "s=" << s;
    prev = gamma_deg;
  }
}

TEST(ExtModelTest, GainExtComposesRiskTerm) {
  const VictimProfile victim = ns2_victim();
  const TimeoutModelParams params = ns2_params();
  const PulseContext ctx{ms(100), mbps(30), 0};
  const double gamma = 0.4;
  const Time period = ms(100) * 2.0 / gamma;
  const double expected =
      throughput_degradation_ext(victim, period, params, ctx) *
      risk_term(gamma, 2.0);
  EXPECT_NEAR(attack_gain_ext(victim, ctx, gamma, 2.0, params), expected,
              1e-12);
}

TEST(ExtModelTest, TimeoutBoundCountMonotoneInPeriod) {
  // Shorter periods shrink W∞, so the timeout-bound count can only grow.
  const VictimProfile victim = ns2_victim(25);
  const TimeoutModelParams params = ns2_params();
  int prev = -1;
  for (Time period : {ms(700), ms(450), ms(260), ms(130), ms(35)}) {
    const int count = timeout_bound_flow_count(victim, period, params);
    EXPECT_GE(count, prev) << "period=" << period;
    prev = count;
  }
  // At T = 35 ms even the 20 ms-RTT flow has W∞ = 3.5 < 4: all bound.
  EXPECT_EQ(prev, 25);
}

TEST(ExtModelTest, ParamValidation) {
  TimeoutModelParams params;
  params.survival_probability = 1.5;
  EXPECT_THROW(params.validate(), ParameterError);
  params = TimeoutModelParams{};
  params.min_rto = 0.0;
  EXPECT_THROW(params.validate(), ParameterError);
  params = TimeoutModelParams{};
  params.shrew_tolerance = 0.0;
  EXPECT_THROW(params.validate(), ParameterError);
  const VictimProfile victim = ns2_victim();
  const PulseContext ctx{ms(50), mbps(25), 0};
  EXPECT_THROW(
      attack_gain_ext(victim, ctx, 1.5, 1.0, TimeoutModelParams{}),
      ParameterError);
}

}  // namespace
}  // namespace pdos
