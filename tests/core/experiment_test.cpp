#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/model.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

RunControl quick_control() {
  RunControl control;
  control.warmup = sec(4);
  control.measure = sec(8);
  return control;
}

TEST(ScenarioConfigTest, Ns2DumbbellMatchesPaperSection41) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(25);
  EXPECT_EQ(config.num_flows, 25);
  EXPECT_DOUBLE_EQ(config.bottleneck, mbps(15));
  EXPECT_DOUBLE_EQ(config.access, mbps(50));
  ASSERT_EQ(config.rtts.size(), 25u);
  EXPECT_DOUBLE_EQ(config.rtts.front(), ms(20));
  EXPECT_DOUBLE_EQ(config.rtts.back(), ms(460));
  EXPECT_EQ(config.queue, QueueKind::kRed);
  EXPECT_DOUBLE_EQ(config.tcp.rto_min, sec(1.0));  // ns-2 minRTO
  EXPECT_EQ(config.tcp.aimd.d, 1);
  EXPECT_NO_THROW(config.validate());
}

TEST(ScenarioConfigTest, TestbedMatchesPaperSection42) {
  const ScenarioConfig config = ScenarioConfig::testbed();
  EXPECT_EQ(config.num_flows, 10);
  EXPECT_DOUBLE_EQ(config.bottleneck, mbps(10));
  EXPECT_DOUBLE_EQ(config.tcp.rto_min, ms(200));  // Linux Fedora RTO_min
  EXPECT_EQ(config.tcp.aimd.d, 2);                // delayed ACKs
  for (Time rtt : config.rtts) EXPECT_DOUBLE_EQ(rtt, ms(150));
  // B = RTT * R_bottle = 0.15 * 10e6 / 8 bytes -> / 1040 packets = 180.
  EXPECT_EQ(config.buffer_packets, 180u);
  EXPECT_NO_THROW(config.validate());
}

TEST(ScenarioConfigTest, VictimProfileMirrorsScenario) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  const VictimProfile victim = config.victim_profile();
  EXPECT_EQ(victim.rtts, config.rtts);
  EXPECT_DOUBLE_EQ(victim.rbottle, config.bottleneck);
  EXPECT_EQ(victim.spacket, config.tcp.mss + config.tcp.header_bytes);
  EXPECT_NO_THROW(victim.validate());
}

TEST(ScenarioConfigTest, ValidationCatchesMismatchedRtts) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  config.rtts.pop_back();
  EXPECT_THROW(config.validate(), ParameterError);
  config = ScenarioConfig::ns2_dumbbell(15);
  config.rtts[0] = ms(1);  // below bottleneck propagation round trip
  EXPECT_THROW(config.validate(), ParameterError);
}

TEST(RunScenarioTest, BaselineNearlySaturatesBottleneck) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  // Long enough for the 460 ms RTT flows to leave slow start.
  RunControl control;
  control.warmup = sec(8);
  control.measure = sec(15);
  const RunResult result = run_scenario(config, std::nullopt, control);
  EXPECT_GT(result.utilization, 0.85);  // Lemma 1's premise
  EXPECT_LE(result.utilization, 1.0);
  EXPECT_EQ(result.attack_packets_sent, 0u);
}

TEST(RunScenarioTest, DeterministicForFixedSeed) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);
  const RunResult a = run_scenario(config, std::nullopt, quick_control());
  const RunResult b = run_scenario(config, std::nullopt, quick_control());
  EXPECT_EQ(a.goodput_bytes, b.goodput_bytes);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(RunScenarioTest, SeedChangesOutcomeSlightly) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);
  const RunResult a = run_scenario(config, std::nullopt, quick_control());
  config.seed = 999;
  const RunResult b = run_scenario(config, std::nullopt, quick_control());
  EXPECT_NE(a.goodput_bytes, b.goodput_bytes);
  // ... but both saturate the link.
  EXPECT_GT(a.utilization, 0.8);
  EXPECT_GT(b.utilization, 0.8);
}

TEST(RunScenarioTest, AttackReducesGoodput) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  const RunControl control = quick_control();
  const RunResult base = run_scenario(config, std::nullopt, control);
  PulseTrain train;
  train.textent = ms(75);
  train.tspace = ms(225);
  train.rattack = mbps(30);
  const RunResult attacked = run_scenario(config, train, control);
  EXPECT_LT(attacked.goodput_bytes, base.goodput_bytes / 2);
  EXPECT_GT(attacked.attack_packets_sent, 100u);
  EXPECT_GT(attacked.bottleneck_queue.dropped, 0u);
}

TEST(RunScenarioTest, IncomingBinsCoverWholeRunAndCarryAttackBytes) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);
  RunControl control = quick_control();
  control.bin_width = ms(100);
  PulseTrain train;
  train.textent = ms(50);
  train.tspace = ms(950);
  train.rattack = mbps(40);
  const RunResult result = run_scenario(config, train, control);
  ASSERT_EQ(result.incoming_bins.size(),
            static_cast<std::size_t>(control.horizon() / control.bin_width));
  const double attack_bytes =
      std::accumulate(result.attack_bins.begin(), result.attack_bins.end(),
                      0.0);
  const double sent =
      static_cast<double>(result.attack_packets_sent) * 1040.0;
  // All attack packets reach the bottleneck (access link is uncongested).
  EXPECT_NEAR(attack_bytes, sent, 0.02 * sent + 5000.0);
  // Attack bins are a subset of incoming bins.
  for (std::size_t i = 0; i < result.attack_bins.size(); ++i) {
    EXPECT_LE(result.attack_bins[i], result.incoming_bins[i] + 1e-9);
  }
}

TEST(RunScenarioTest, CwndTraceRecordsSawtooth) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);
  RunControl control = quick_control();
  control.traced_flow = 0;
  PulseTrain train;
  train.textent = ms(50);
  train.tspace = ms(1950);
  train.rattack = mbps(60);
  const RunResult result = run_scenario(config, train, control);
  EXPECT_GT(result.cwnd_trace.size(), 100u);
  // The trace must contain decreases (attack epochs) and increases.
  bool saw_up = false;
  bool saw_down = false;
  for (std::size_t i = 1; i < result.cwnd_trace.size(); ++i) {
    if (result.cwnd_trace[i].second > result.cwnd_trace[i - 1].second)
      saw_up = true;
    if (result.cwnd_trace[i].second < result.cwnd_trace[i - 1].second)
      saw_down = true;
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
}

TEST(RunScenarioTest, DropTailQueueAlsoSupported) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  config.queue = QueueKind::kDropTail;
  const RunResult result = run_scenario(config, std::nullopt, quick_control());
  EXPECT_GT(result.utilization, 0.85);
  EXPECT_EQ(result.red_early_drops, 0u);
}

TEST(RunScenarioTest, RedStatsExposedUnderAttack) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  PulseTrain train;
  train.textent = ms(100);
  train.tspace = ms(400);
  train.rattack = mbps(40);
  const RunResult result = run_scenario(config, train, quick_control());
  EXPECT_GT(result.red_early_drops + result.red_forced_drops, 0u);
  EXPECT_EQ(result.red_early_drops + result.red_forced_drops,
            result.bottleneck_queue.dropped);
}

TEST(RunScenarioTest, InvalidControlRejected) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);
  RunControl control;
  control.measure = 0.0;
  EXPECT_THROW(run_scenario(config, std::nullopt, control), ParameterError);
  control = quick_control();
  control.traced_flow = 99;
  EXPECT_THROW(run_scenario(config, std::nullopt, control), ParameterError);
}

TEST(MeasureGainTest, GainComposesDegradationAndRisk) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  const RunControl control = quick_control();
  const BitRate baseline = measure_baseline(config, control);
  ASSERT_GT(baseline, 0.0);
  PulseTrain train = PulseTrain::from_gamma(ms(75), mbps(30), 0.5, mbps(15));
  const GainMeasurement point = measure_gain(config, train, 2.0, control,
                                             baseline);
  EXPECT_NEAR(point.gamma, 0.5, 1e-9);
  EXPECT_NEAR(point.gain, point.degradation * 0.25, 1e-9);  // (1-0.5)^2
  EXPECT_GT(point.degradation, 0.0);
  EXPECT_LE(point.degradation, 1.0);
}

TEST(RunScenarioTest, CrossTrafficConsumesBandwidth) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  const RunResult clean = run_scenario(config, std::nullopt, quick_control());
  config.cross_traffic_rate = mbps(5);
  const RunResult crossed =
      run_scenario(config, std::nullopt, quick_control());
  // TCP must cede a substantial share to the unresponsive source, but the
  // link should still be highly utilized overall.
  EXPECT_LT(crossed.goodput_rate, clean.goodput_rate - mbps(2));
  EXPECT_GT(crossed.goodput_rate, mbps(4));
}

TEST(RunScenarioTest, AttackStillBitesUnderCrossTraffic) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  config.cross_traffic_rate = mbps(2);
  const RunControl control = quick_control();
  const BitRate baseline = measure_baseline(config, control);
  PulseTrain train = PulseTrain::from_gamma(ms(75), mbps(30), 0.6, mbps(15));
  const GainMeasurement point =
      measure_gain(config, train, 1.0, control, baseline);
  EXPECT_GT(point.degradation, 0.3);
}

TEST(RunScenarioTest, JitterRisesUnderAttack) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  RunControl control;
  control.warmup = sec(6);
  control.measure = sec(15);
  const RunResult clean = run_scenario(config, std::nullopt, control);
  PulseTrain train = PulseTrain::from_gamma(ms(75), mbps(30), 0.5, mbps(15));
  const RunResult attacked = run_scenario(config, train, control);
  // §2.3: the attack increases delivery jitter.
  EXPECT_GT(attacked.mean_delivery_jitter, clean.mean_delivery_jitter);
}

TEST(RunScenarioTest, PerFlowGoodputSumsToAggregate) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  const RunResult result = run_scenario(config, std::nullopt, quick_control());
  ASSERT_EQ(result.per_flow_goodput.size(), 10u);
  Bytes sum = 0;
  for (Bytes b : result.per_flow_goodput) sum += b;
  EXPECT_EQ(sum, result.goodput_bytes);
  EXPECT_GT(result.fairness_index, 0.0);
  EXPECT_LE(result.fairness_index, 1.0);
}

TEST(RunScenarioTest, QuasiGlobalSyncDegradesEqualRttFlowsUniformly) {
  // A corollary of §2.3's quasi-global synchronization: because every
  // pulse hits all flows *simultaneously*, equal-RTT victims are degraded
  // nearly uniformly — the AIMD-based attack leaves no per-flow fairness
  // fingerprint for a detector to key on, unlike a targeted attack.
  const ScenarioConfig config = ScenarioConfig::testbed(10);
  RunControl control;
  control.warmup = sec(6);
  control.measure = sec(15);
  const RunResult clean = run_scenario(config, std::nullopt, control);
  EXPECT_GT(clean.fairness_index, 0.9);
  PulseTrain train = PulseTrain::from_gamma(ms(150), mbps(30), 0.5, mbps(10));
  const RunResult attacked = run_scenario(config, train, control);
  // Throughput halves or worse...
  EXPECT_LT(attacked.goodput_rate, 0.7 * clean.goodput_rate);
  // ...yet the allocation stays nearly as fair as the clean run.
  EXPECT_GT(attacked.fairness_index, clean.fairness_index - 0.1);
}

TEST(RunScenarioTest, QueueOccupancySampledEveryBin) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);
  RunControl control = quick_control();
  control.bin_width = ms(100);
  const RunResult result = run_scenario(config, std::nullopt, control);
  const auto expected_samples =
      static_cast<std::size_t>(control.horizon() / control.bin_width);
  EXPECT_NEAR(static_cast<double>(result.queue_occupancy.size()),
              static_cast<double>(expected_samples), 2.0);
  EXPECT_EQ(result.queue_occupancy.size(), result.red_avg_samples.size());
  for (double q : result.queue_occupancy) {
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, static_cast<double>(config.buffer_packets));
  }
}

TEST(RunScenarioTest, PulsesSpikeQueueAboveRedAverage) {
  // The AQM transient: during a pulse the instantaneous queue runs far
  // ahead of RED's EWMA estimate.
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  PulseTrain train;
  train.textent = ms(100);
  train.tspace = ms(900);
  train.rattack = mbps(60);
  const RunResult result = run_scenario(config, train, quick_control());
  double max_excess = 0.0;
  for (std::size_t i = 0; i < result.queue_occupancy.size(); ++i) {
    max_excess = std::max(
        max_excess, result.queue_occupancy[i] - result.red_avg_samples[i]);
  }
  EXPECT_GT(max_excess, 50.0);  // transient overshoot in packets
}

TEST(MeasureGainTest, RejectsZeroBaseline) {
  const ScenarioConfig config = ScenarioConfig::ns2_dumbbell(5);
  PulseTrain train;
  EXPECT_THROW(measure_gain(config, train, 1.0, quick_control(), 0.0),
               ParameterError);
}

}  // namespace
}  // namespace pdos
