// Integration tests: the paper's headline phenomena, end to end.
//
// Each test runs full packet-level simulations, so configurations are kept
// small (short horizons, few flows) while still exercising the claims:
// quasi-global synchronization at exactly T_AIMD, analytical-vs-simulated
// gain agreement in the normal-gain regime, shrew over-gain, and detection
// evasion.
#include <gtest/gtest.h>

#include <algorithm>

#include "attack/shrew.hpp"
#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "core/planner.hpp"
#include "detect/rate_detector.hpp"
#include "stats/timeseries.hpp"

namespace pdos {
namespace {

RunControl control_of(Time warmup, Time measure) {
  RunControl control;
  control.warmup = warmup;
  control.measure = measure;
  return control;
}

TEST(SynchronizationTest, IncomingTrafficOscillatesAtAttackPeriod) {
  // Scaled-down Fig. 3(a): T_AIMD = 1 s instead of 2 s to shorten the run.
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(12);
  PulseTrain train;
  train.textent = ms(50);
  train.tspace = ms(950);
  train.rattack = mbps(100);
  RunControl control = control_of(0.0, sec(30));
  const RunResult result = run_scenario(config, train, control);
  const auto z = normalize_zscore(result.incoming_bins);
  const Time period = estimate_period(z, control.bin_width, 5, 30);
  EXPECT_NEAR(period, train.period(), control.bin_width + 1e-9);
  // ~30 pinnacles in 30 s.
  const std::size_t peaks = count_peaks(z, 1.0, 3);
  EXPECT_GE(peaks, 26u);
  EXPECT_LE(peaks, 34u);
}

TEST(SynchronizationTest, NoAttackPeriodicityWithoutAttack) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(12);
  RunControl control = control_of(0.0, sec(30));
  const RunResult result = run_scenario(config, std::nullopt, control);
  // Without the attack the z-scored series has no strong 1 s component.
  const auto z = normalize_zscore(result.incoming_bins);
  EXPECT_LT(autocorrelation(z, 10), 0.5);
}

TEST(GainCurveTest, NormalGainPointMatchesAnalysis) {
  // The calibrated normal-gain operating point (T_extent = 50 ms,
  // R_attack = 25 Mbps, gamma near the optimum): simulated Γ within
  // ±0.15 of Eq. (10).
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(15);
  const RunControl control = control_of(sec(6), sec(20));
  const BitRate baseline = measure_baseline(config, control);
  AttackPlanRequest request;
  request.victim = config.victim_profile();
  request.textent = ms(50);
  request.rattack = mbps(25);
  const AttackPlan plan = plan_attack_at_gamma(request, 0.6);
  const GainMeasurement point =
      measure_gain(config, plan.train, 1.0, control, baseline);
  EXPECT_NEAR(point.degradation, plan.predicted_degradation, 0.15);
  EXPECT_NEAR(point.gain, plan.predicted_gain, 0.15);
}

TEST(GainCurveTest, DegradationIncreasesWithGamma) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  const RunControl control = control_of(sec(5), sec(12));
  const BitRate baseline = measure_baseline(config, control);
  AttackPlanRequest request;
  request.victim = config.victim_profile();
  request.textent = ms(75);
  request.rattack = mbps(30);
  double prev = -1.0;
  for (double gamma : {0.2, 0.5, 0.8}) {
    const AttackPlan plan = plan_attack_at_gamma(request, gamma);
    const GainMeasurement point =
        measure_gain(config, plan.train, 1.0, control, baseline);
    EXPECT_GT(point.degradation, prev - 0.05) << "gamma=" << gamma;
    prev = point.degradation;
  }
  EXPECT_GT(prev, 0.6);  // gamma = 0.8 devastates the bottleneck
}

TEST(GainCurveTest, MeasuredGainIsUnimodalIshOverGamma) {
  // G(γ) should rise from near zero, peak, and fall towards γ -> 1.
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  const RunControl control = control_of(sec(5), sec(12));
  const BitRate baseline = measure_baseline(config, control);
  AttackPlanRequest request;
  request.victim = config.victim_profile();
  request.textent = ms(50);
  request.rattack = mbps(25);
  std::vector<double> gains;
  for (double gamma : {0.15, 0.5, 0.95}) {
    const AttackPlan plan = plan_attack_at_gamma(request, gamma);
    gains.push_back(
        measure_gain(config, plan.train, 1.0, control, baseline).gain);
  }
  const double peak = *std::max_element(gains.begin(), gains.end());
  EXPECT_EQ(peak, gains[1]);  // middle point beats both extremes
}

TEST(ShrewTest, ShrewPeriodOutperformsAnalyticalPrediction) {
  // Fig. 10: when T_AIMD = minRTO (1 s in ns-2), flows are pinned in
  // timeout and the simulated gain exceeds the analytical prediction.
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  const RunControl control = control_of(sec(5), sec(15));
  const BitRate baseline = measure_baseline(config, control);
  AttackPlanRequest request;
  request.victim = config.victim_profile();
  request.textent = ms(100);
  request.rattack = mbps(30);
  request.victim_min_rto = config.tcp.rto_min;
  // gamma placing the period exactly at minRTO = 1 s.
  const double c_attack = 2.0;
  const double gamma_shrew = request.textent * c_attack / 1.0;
  const AttackPlan plan = plan_attack_at_gamma(request, gamma_shrew);
  ASSERT_TRUE(plan.shrew_harmonic.has_value());
  EXPECT_EQ(*plan.shrew_harmonic, 1);
  const GainMeasurement point =
      measure_gain(config, plan.train, 1.0, control, baseline);
  EXPECT_GT(point.run.total_timeouts, 10u);
  EXPECT_GT(point.degradation, plan.predicted_degradation + 0.1);
}

TEST(TestbedTest, ReproducesFig12GainOrdering) {
  // Fig. 12's qualitative result at gamma ~ 0.3: the analysis over-
  // estimates at R_attack = 15 Mbps and under-estimates at 30 Mbps.
  ScenarioConfig config = ScenarioConfig::testbed(10);
  const RunControl control = control_of(sec(6), sec(15));
  const BitRate baseline = measure_baseline(config, control);
  AttackPlanRequest request;
  request.victim = config.victim_profile();
  request.textent = ms(150);

  request.rattack = mbps(15);
  const AttackPlan weak = plan_attack_at_gamma(request, 0.3);
  const GainMeasurement weak_point =
      measure_gain(config, weak.train, 1.0, control, baseline);
  EXPECT_LT(weak_point.gain, weak.predicted_gain + 0.03);

  request.rattack = mbps(30);
  const AttackPlan strong = plan_attack_at_gamma(request, 0.3);
  const GainMeasurement strong_point =
      measure_gain(config, strong.train, 1.0, control, baseline);
  EXPECT_GT(strong_point.gain, strong.predicted_gain - 0.03);
  // Higher pulse rate inflicts at least as much measured damage.
  EXPECT_GE(strong_point.degradation, weak_point.degradation - 0.05);
}

TEST(DetectionTest, PdosEvadesWhatFloodingCannot) {
  // The motivation for the risk term: a flooding attack saturates every
  // detector window; an optimized PDoS train with the same per-pulse rate
  // stays under the radar of a 1 s rate detector.
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(10);
  RunControl control = control_of(0.0, sec(15));
  control.bin_width = ms(100);

  RateDetectorConfig detector_config;
  detector_config.window = sec(1.0);
  detector_config.threshold_fraction = 0.95;
  detector_config.capacity = config.bottleneck;

  auto run_detector = [&](const std::optional<PulseTrain>& train) {
    const RunResult result = run_scenario(config, train, control);
    RateAnomalyDetector detector(detector_config);
    // Feed only the attack traffic, as an ingress filter would see it
    // before it merges with (already rate-limited) legitimate flows.
    for (std::size_t i = 0; i < result.attack_bins.size(); ++i) {
      detector.observe(static_cast<double>(i) * control.bin_width,
                       static_cast<Bytes>(result.attack_bins[i]));
    }
    detector.finish(control.horizon());
    return detector.triggered();
  };

  EXPECT_TRUE(run_detector(PulseTrain::flooding(mbps(25))));
  const PulseTrain pdos = PulseTrain::from_gamma(ms(50), mbps(25), 0.5,
                                                 mbps(15));
  EXPECT_FALSE(run_detector(pdos));
}

TEST(QueueAblationTest, RedYieldsHigherGainThanDropTail) {
  // §5's forward-looking observation: the PDoS attacker does better
  // against RED than against drop-tail.
  const RunControl control = control_of(sec(5), sec(15));
  PulseTrain train = PulseTrain::from_gamma(ms(75), mbps(30), 0.5, mbps(15));

  ScenarioConfig red = ScenarioConfig::ns2_dumbbell(15);
  const BitRate red_base = measure_baseline(red, control);
  const double red_gain =
      measure_gain(red, train, 1.0, control, red_base).gain;

  ScenarioConfig droptail = ScenarioConfig::ns2_dumbbell(15);
  droptail.queue = QueueKind::kDropTail;
  const BitRate dt_base = measure_baseline(droptail, control);
  const double dt_gain =
      measure_gain(droptail, train, 1.0, control, dt_base).gain;

  EXPECT_GT(red_gain, dt_gain - 0.05);
}

}  // namespace
}  // namespace pdos
