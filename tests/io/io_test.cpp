#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/gnuplot.hpp"
#include "util/assert.hpp"

namespace pdos {
namespace {

TEST(CsvTest, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"gamma", "gain"});
  csv.row({"0.5", "0.27"});
  csv.row({0.6, 0.25});
  EXPECT_EQ(out.str(), "gamma,gain\n0.5,0.27\n0.6,0.25\n");
  EXPECT_EQ(csv.rows_written(), 2u);
  EXPECT_EQ(csv.columns(), 2u);
}

TEST(CsvTest, WidthMismatchThrows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), ParameterError);
}

TEST(CsvTest, EmptyHeaderThrows) {
  std::ostringstream out;
  EXPECT_THROW(CsvWriter(out, {}), ParameterError);
}

TEST(CsvTest, EscapingPerRfc4180) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, EscapedCellsRoundTripThroughWriter) {
  std::ostringstream out;
  CsvWriter csv(out, {"label"});
  csv.row({std::vector<std::string>{"T_extent = 50 ms, R = 25"}[0]});
  EXPECT_EQ(out.str(), "label\n\"T_extent = 50 ms, R = 25\"\n");
}

class GnuplotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test and per process: ctest runs test cases concurrently.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("pdos_gp_") + info->name() + "_" +
            std::to_string(static_cast<long>(::getpid())));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::filesystem::path dir_;
};

TEST_F(GnuplotTest, GainFigureEmitsDataAndScript) {
  GainCurveData curve;
  curve.label = "T_extent = 50 ms";
  curve.gamma = {0.3, 0.5, 0.7};
  curve.analytic = {0.1, 0.27, 0.2};
  curve.simulated = {0.12, 0.23, 0.19};
  const std::string gp =
      write_gain_figure(dir_.string(), "fig06", "Fig. 6", {curve});
  EXPECT_TRUE(std::filesystem::exists(gp));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "fig06.dat"));
  const std::string script = slurp(gp);
  EXPECT_NE(script.find("plot"), std::string::npos);
  EXPECT_NE(script.find("fig06.dat"), std::string::npos);
  EXPECT_NE(script.find("T_extent = 50 ms (analytic)"), std::string::npos);
  const std::string data = slurp((dir_ / "fig06.dat").string());
  EXPECT_NE(data.find("0.5 0.27 0.23"), std::string::npos);
}

TEST_F(GnuplotTest, MultipleCurvesUseIndexedBlocks) {
  GainCurveData a;
  a.label = "a";
  a.gamma = {0.5};
  a.analytic = {0.1};
  a.simulated = {0.1};
  GainCurveData b = a;
  b.label = "b";
  const std::string gp =
      write_gain_figure(dir_.string(), "multi", "t", {a, b});
  const std::string script = slurp(gp);
  EXPECT_NE(script.find("index 0"), std::string::npos);
  EXPECT_NE(script.find("index 1"), std::string::npos);
}

TEST_F(GnuplotTest, RaggedCurveRejected) {
  GainCurveData bad;
  bad.label = "bad";
  bad.gamma = {0.5, 0.6};
  bad.analytic = {0.1};
  bad.simulated = {0.1, 0.2};
  EXPECT_THROW(write_gain_figure(dir_.string(), "x", "t", {bad}),
               ParameterError);
  EXPECT_THROW(write_gain_figure(dir_.string(), "x", "t", {}),
               ParameterError);
}

TEST_F(GnuplotTest, TimeseriesFigure) {
  const std::string gp = write_timeseries_figure(
      dir_.string(), "fig03", "Fig. 3(a)", {0.1, -0.2, 2.5}, ms(100));
  const std::string data = slurp((dir_ / "fig03.dat").string());
  // Bin centers at 0.05, 0.15, 0.25.
  EXPECT_NE(data.find("0.05 0.1"), std::string::npos);
  EXPECT_NE(data.find("0.25 2.5"), std::string::npos);
  EXPECT_NE(slurp(gp).find("impulses"), std::string::npos);
}

TEST_F(GnuplotTest, TimeseriesValidation) {
  EXPECT_THROW(
      write_timeseries_figure(dir_.string(), "x", "t", {}, ms(100)),
      ParameterError);
  EXPECT_THROW(
      write_timeseries_figure(dir_.string(), "x", "t", {1.0}, 0.0),
      ParameterError);
}

}  // namespace
}  // namespace pdos
