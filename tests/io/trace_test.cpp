#include "io/trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "net/droptail.hpp"

namespace pdos {
namespace {

class NullSink : public PacketHandler {
 public:
  void handle(Packet) override {}
};

Packet packet_of(PacketType type, FlowId flow, std::int64_t seq) {
  Packet pkt;
  pkt.type = type;
  pkt.flow = flow;
  pkt.seq = seq;
  pkt.size_bytes = 1040;
  return pkt;
}

TEST(TraceTest, ArrivalAndDepartureLines) {
  Simulator sim;
  NullSink sink;
  Link link(sim, "bottleneck", mbps(8), 0.0,
            std::make_unique<DropTailQueue>(10), &sink);
  std::ostringstream out;
  TraceLogger trace(sim, out);
  trace.attach(link);

  link.handle(packet_of(PacketType::kTcpData, 3, 17));
  sim.run();
  trace.flush();

  const std::string text = out.str();
  EXPECT_NE(text.find("+ bottleneck tcp 3 17 1040"), std::string::npos);
  EXPECT_NE(text.find("- bottleneck tcp 3 17 1040"), std::string::npos);
  EXPECT_EQ(trace.lines_written(), 2u);
}

TEST(TraceTest, DepartureCarriesSerializationTime) {
  Simulator sim;
  NullSink sink;
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(10),
            &sink);
  std::ostringstream out;
  TraceLogger trace(sim, out);
  trace.attach(link);
  link.handle(packet_of(PacketType::kTcpData, 0, 0));
  sim.run();
  trace.flush();
  // 1040 bytes at 8 kbps = 1.04 s.
  EXPECT_NE(out.str().find("1.040000 - l"), std::string::npos);
}

TEST(TraceTest, FilterSuppressesClasses) {
  Simulator sim;
  NullSink sink;
  Link link(sim, "l", mbps(8), 0.0, std::make_unique<DropTailQueue>(10),
            &sink);
  std::ostringstream out;
  TraceFilter filter;
  filter.tcp_data = false;
  filter.attack = true;
  TraceLogger trace(sim, out, filter);
  trace.attach(link);
  link.handle(packet_of(PacketType::kTcpData, 0, 0));
  link.handle(packet_of(PacketType::kAttack, -1, 0));
  sim.run();
  trace.flush();
  EXPECT_EQ(out.str().find("tcp"), std::string::npos);
  EXPECT_NE(out.str().find("atk"), std::string::npos);
}

TEST(TraceTest, AcksOffByDefault) {
  TraceFilter filter;
  EXPECT_FALSE(filter.accepts(packet_of(PacketType::kTcpAck, 0, 0)));
  EXPECT_TRUE(filter.accepts(packet_of(PacketType::kTcpData, 0, 0)));
  EXPECT_TRUE(filter.accepts(packet_of(PacketType::kAttack, 0, 0)));
  EXPECT_TRUE(filter.accepts(packet_of(PacketType::kUdp, 0, 0)));
}

TEST(TraceTest, BufferedLinesReachStreamOnDestruction) {
  Simulator sim;
  NullSink sink;
  Link link(sim, "l", mbps(8), 0.0, std::make_unique<DropTailQueue>(10),
            &sink);
  std::ostringstream out;
  {
    TraceLogger trace(sim, out);
    trace.attach(link);
    link.handle(packet_of(PacketType::kTcpData, 1, 2));
    sim.run();
    // Below the high-water mark nothing has reached the stream yet...
    EXPECT_TRUE(out.str().empty());
    EXPECT_EQ(trace.lines_written(), 2u);
  }
  // ...but the destructor flushes everything.
  EXPECT_NE(out.str().find("+ l tcp 1 2 1040"), std::string::npos);
  EXPECT_NE(out.str().find("- l tcp 1 2 1040"), std::string::npos);
}

TEST(TraceTest, DroppedPacketsAppearOnlyAsArrivals) {
  Simulator sim;
  NullSink sink;
  Link link(sim, "l", kbps(8), 0.0, std::make_unique<DropTailQueue>(1),
            &sink);
  std::ostringstream out;
  TraceLogger trace(sim, out);
  trace.attach(link);
  for (int i = 0; i < 5; ++i) {
    link.handle(packet_of(PacketType::kTcpData, 0, i));
  }
  sim.run();
  trace.flush();
  // 5 arrivals; only 2 departures (1 in service + 1 buffered).
  std::size_t plus = 0;
  std::size_t minus = 0;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find(" + ") != std::string::npos) ++plus;
    if (line.find(" - ") != std::string::npos) ++minus;
  }
  EXPECT_EQ(plus, 5u);
  EXPECT_EQ(minus, 2u);
}

}  // namespace
}  // namespace pdos
