// Determinism suite for the conservative PDES sharding path
// (DESIGN.md §13, src/sim/pdes/, src/core/experiment_pdes.cpp).
//
// The contract under test: shards = K is not an approximation of
// shards = 1 — it IS the same simulation. On the full backend every
// RunResult field including the scheduler event count is bit-identical;
// on the fast backend every counter, bin, and trace matches while only
// the event count differs (cross-shard links cannot fuse). And none of it
// may depend on the executor: inline rounds and ThreadPool rounds must
// produce the same bytes.
//
// This file also runs in the TSan CI job (tsan-sweep), where the
// ThreadPool-executor cases double as a race detector for the engine's
// barrier/channel protocol.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>

#include "attack/pulse.hpp"
#include "core/experiment.hpp"
#include "support/digest.hpp"
#include "sweep/thread_pool.hpp"
#include "util/units.hpp"

namespace pdos {
namespace {

using testsupport::fnv1a64;
using testsupport::serialize;

PulseTrain short_train() {
  PulseTrain train;
  train.textent = ms(50);
  train.rattack = mbps(60);
  train.tspace = ms(950);
  return train;
}

RunControl short_control() {
  RunControl control;
  control.warmup = sec(1);
  control.measure = sec(3);
  control.traced_flow = 0;
  return control;
}

/// Run the 16-flow ns-2 dumbbell at a given shard count (optionally on a
/// pool-backed executor) and serialize the result.
std::string run_sharded(Backend backend, int shards,
                        sweep::ThreadPool* pool = nullptr,
                        bool include_events = true) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(16);
  config.backend = backend;
  config.shards = shards;
  ScenarioWorkspace workspace;
  if (pool != nullptr) {
    workspace.set_shard_executor(sweep::pool_shard_executor(*pool));
  }
  const RunResult result =
      workspace.run(config, short_train(), short_control());
  if (shards > 1) {
    EXPECT_GT(workspace.pdes_rounds(), 0u);
    EXPECT_GT(workspace.pdes_messages(), 0u);
  }
  return serialize(result, include_events);
}

TEST(PdesShardingTest, FullBackendBitIdenticalAcrossShardCounts) {
  const std::string baseline = run_sharded(Backend::kFull, 1);
  for (int shards : {2, 3, 5}) {
    EXPECT_EQ(baseline, run_sharded(Backend::kFull, shards))
        << "full backend diverged at shards=" << shards;
  }
}

TEST(PdesShardingTest, FastBackendCountersIdenticalAcrossShardCounts) {
  // Fast path: every counter/bin/trace matches; events are excluded from
  // the serialization because cross-shard links cannot fuse.
  const std::string baseline =
      run_sharded(Backend::kFast, 1, nullptr, /*include_events=*/false);
  for (int shards : {2, 4}) {
    EXPECT_EQ(baseline,
              run_sharded(Backend::kFast, shards, nullptr,
                          /*include_events=*/false))
        << "fast backend diverged at shards=" << shards;
  }
}

TEST(PdesShardingTest, ExecutorDoesNotChangeResults) {
  // Inline rounds vs a ThreadPool at several widths: byte-identical. This
  // is the case TSan watches in CI.
  const std::string inline_result = run_sharded(Backend::kFull, 4);
  for (int threads : {1, 2, 4}) {
    sweep::ThreadPool pool(threads);
    EXPECT_EQ(inline_result, run_sharded(Backend::kFull, 4, &pool))
        << "executor with " << threads << " threads changed the results";
  }
}

TEST(PdesShardingTest, WarmWorkspaceReusesShardsAcrossRuns) {
  // One workspace cycling shard counts (including back to 1) must keep
  // reproducing the same bytes — warm flow-shard simulators and channel
  // buffers rewind like the primary arena does.
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(16);
  ScenarioWorkspace workspace;
  std::string baseline;
  for (int shards : {1, 3, 2, 3, 1}) {
    config.shards = shards;
    const RunResult result =
        workspace.run(config, short_train(), short_control());
    const std::string text = serialize(result);
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(baseline, text) << "warm rerun diverged at shards=" << shards;
    }
  }
}

TEST(PdesShardingTest, GoldenFig03DigestReproducesSharded) {
  // The pinned full-path digest (tests/support/digest.hpp) must come out of
  // the sharded engine unchanged — including the event count.
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(24);
  PulseTrain train;
  train.textent = ms(50);
  train.rattack = mbps(100);
  train.tspace = ms(1950);
  RunControl control;
  control.warmup = sec(3);
  control.measure = sec(10);
  control.traced_flow = 0;

  for (int shards : {2, 4}) {
    config.shards = shards;
    const RunResult result = run_scenario(config, train, control);
    const std::uint64_t digest = fnv1a64(serialize(result));
    EXPECT_EQ(digest, testsupport::kFig03Digest)
        << "fig03 digest changed at shards=" << shards << ": actual 0x"
        << std::hex << digest;
  }
}

TEST(PdesShardingTest, GoldenFig12RedDigestReproducesSharded) {
  ScenarioConfig config = ScenarioConfig::testbed(10);
  const PulseTrain train =
      PulseTrain::from_gamma(ms(150), mbps(20), 0.5, config.bottleneck);
  RunControl control;
  control.warmup = sec(2);
  control.measure = sec(8);

  for (int shards : {2, 4}) {
    config.shards = shards;
    const RunResult result = run_scenario(config, train, control);
    const std::uint64_t digest = fnv1a64(serialize(result));
    EXPECT_EQ(digest, testsupport::kFig12RedDigest)
        << "fig12 RED digest changed at shards=" << shards << ": actual 0x"
        << std::hex << digest;
  }
}

TEST(PdesShardingTest, ValidateRejectsBadShardConfigs) {
  ScenarioConfig config = ScenarioConfig::ns2_dumbbell(4);
  config.shards = 0;
  EXPECT_THROW(config.validate(), std::exception);
  config.shards = 6;  // 5 flow shards > 4 flows
  EXPECT_THROW(config.validate(), std::exception);
  config.shards = 2;
  config.backend = Backend::kFluid;
  EXPECT_THROW(config.validate(), std::exception);
}

}  // namespace
}  // namespace pdos
