#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.hpp"

namespace pdos {
namespace {

TEST(TimerTest, FiresAtScheduledTime) {
  Scheduler sched;
  Time seen = -1.0;
  Timer timer(sched, [&] { seen = sched.now(); });
  timer.schedule_at(2.5);
  EXPECT_TRUE(timer.pending());
  sched.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_FALSE(timer.pending());
}

TEST(TimerTest, ScheduleInIsRelativeToNow) {
  Scheduler sched;
  Time seen = -1.0;
  Timer timer(sched, [&] { seen = sched.now(); });
  sched.schedule(1.0, [&] { timer.schedule_in(2.0); });
  sched.run();
  EXPECT_DOUBLE_EQ(seen, 3.0);
}

TEST(TimerTest, RestartMovesTheDeadline) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&] { ++fired; });
  timer.schedule_at(1.0);
  timer.schedule_at(5.0);  // restart: one logical timer, one firing
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 5.0);
}

TEST(TimerTest, RestartKeepsFifoContractWithFreshSchedules) {
  // A restarted timer must fire after events already waiting at the new
  // deadline, exactly as if it had been cancelled and re-scheduled.
  Scheduler sched;
  std::vector<int> order;
  Timer timer(sched, [&] { order.push_back(0); });
  timer.schedule_at(1.0);
  sched.schedule(3.0, [&] { order.push_back(1); });
  timer.schedule_at(3.0);
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(TimerTest, StopPreventsFiring) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&] { ++fired; });
  timer.schedule_at(1.0);
  EXPECT_TRUE(timer.stop());
  EXPECT_FALSE(timer.pending());
  EXPECT_FALSE(timer.stop()) << "second stop reports already-idle";
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, CallbackCanReArmForPeriodicPatterns) {
  Scheduler sched;
  std::vector<Time> firings;
  Timer timer(sched, [&] {
    firings.push_back(sched.now());
    if (firings.size() < 4) timer.schedule_in(1.0);
  });
  timer.schedule_at(1.0);
  sched.run();
  EXPECT_EQ(firings, (std::vector<Time>{1.0, 2.0, 3.0, 4.0}));
}

TEST(TimerTest, ReArmAfterFiringUsesFreshSlot) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&] { ++fired; });
  timer.schedule_at(1.0);
  sched.run();
  EXPECT_EQ(fired, 1);
  timer.schedule_at(2.0);  // stale id must fall through to a new schedule
  EXPECT_TRUE(timer.pending());
  sched.run();
  EXPECT_EQ(fired, 2);
}

TEST(TimerTest, DestructorCancelsPendingFiring) {
  Scheduler sched;
  int fired = 0;
  {
    Timer timer(sched, [&] { ++fired; });
    timer.schedule_at(1.0);
  }
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, StopDuringCallbackIsANoOp) {
  Scheduler sched;
  int fired = 0;
  Timer timer(sched, [&] {
    ++fired;
    EXPECT_FALSE(timer.stop()) << "timer is already idle while firing";
  });
  timer.schedule_at(1.0);
  sched.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace pdos
