// Steady-state allocation audit for the event engine.
//
// The engine's contract is that a warmed-up scheduler performs ZERO heap
// allocations: closures live inline in their slots (InlineFn), the heap
// array and slot slabs are pre-sized by reserve(), and freed slots recycle
// through the free list. These tests count every global operator new call
// across 1e5-event workloads and require the delta to be exactly zero.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

#include "net/droptail.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/red.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "traffic/sources.hpp"

namespace {

std::size_t g_new_calls = 0;

}  // namespace

// Counting global allocator hooks. Single-threaded test binary, so a plain
// counter is enough; all variants funnel through these two signatures.
void* operator new(std::size_t size) {
  ++g_new_calls;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pdos {
namespace {

constexpr int kEvents = 100000;

TEST(AllocTest, ReservedSchedulerRunsEventsAllocationFree) {
  Scheduler sched;
  sched.reserve(kEvents);
  long long sink = 0;

  const std::size_t before = g_new_calls;
  for (int i = 0; i < kEvents; ++i) {
    sched.schedule(static_cast<Time>(i % 97), [&sink] { ++sink; });
  }
  sched.run();
  const std::size_t after = g_new_calls;

  EXPECT_EQ(sink, kEvents);
  EXPECT_EQ(after - before, 0u)
      << "scheduling+running " << kEvents
      << " events must not touch the heap after reserve()";
}

TEST(AllocTest, SelfChainingEventStaysAllocationFree) {
  // The common simulation shape: a small pending population churning
  // through slot reuse. Needs only a tiny reserve, not one per event.
  Scheduler sched;
  sched.reserve(8);
  int remaining = kEvents;

  const std::size_t before = g_new_calls;
  struct Chain {
    Scheduler& sched;
    int& remaining;
    void operator()() const {
      if (--remaining > 0) sched.schedule(0.5, Chain{sched, remaining});
    }
  };
  sched.schedule(0.5, Chain{sched, remaining});
  sched.run();
  const std::size_t after = g_new_calls;

  EXPECT_EQ(remaining, 0);
  EXPECT_EQ(after - before, 0u);
}

TEST(AllocTest, TimerRestartLoopStaysAllocationFree) {
  Scheduler sched;
  sched.reserve(8);
  int fired = 0;

  const std::size_t before = g_new_calls;
  {
    Timer timer(sched, [&] { ++fired; });
    // Restart a pending timer 10k times, then let it fire.
    timer.schedule_at(1.0);
    for (int i = 0; i < 10000; ++i) {
      timer.schedule_at(1.0 + 0.001 * i);
    }
    sched.run();
  }
  const std::size_t after = g_new_calls;

  EXPECT_EQ(fired, 1) << "restarts move one logical deadline";
  EXPECT_EQ(after - before, 0u);
}

TEST(AllocTest, CancelScheduleChurnStaysAllocationFree) {
  // TCP RTO shape: arm, cancel, re-arm. Slot recycling must keep the
  // working set constant.
  Scheduler sched;
  sched.reserve(8);

  const std::size_t before = g_new_calls;
  EventId pending = kInvalidEventId;
  for (int i = 0; i < 50000; ++i) {
    if (pending != kInvalidEventId) sched.cancel(pending);
    pending = sched.schedule(1000.0, [] {});
  }
  sched.run();
  const std::size_t after = g_new_calls;

  EXPECT_EQ(after - before, 0u);
}

TEST(AllocTest, TappedLinkPipelineStaysAllocationFree) {
  // End-to-end data path: packets burst into a tapped link faster than it
  // drains, so the queue fills, the propagation rings wrap, and both taps
  // fire per packet. After one warm-up burst has grown every ring to its
  // high-water mark, a second identical burst must not touch the allocator.
  Simulator sim(7);
  sim.reserve_events(64);

  struct CountingSink : PacketHandler {
    long long received = 0;
    void handle(Packet) override { ++received; }
  };
  auto* sink = sim.make<CountingSink>();
  auto* link = sim.make<Link>(sim, "bottleneck", mbps(10), ms(5),
                              std::make_unique<DropTailQueue>(32), sink);
  long long arrivals = 0;
  long long departures = 0;
  link->add_arrival_tap([&arrivals](const Packet&) { ++arrivals; });
  link->add_departure_tap([&departures](const Packet&) { ++departures; });

  struct BurstSource {
    Simulator& sim;
    Link& link;
    int remaining;
    void operator()() const {
      Packet pkt;
      pkt.type = PacketType::kUdp;
      pkt.size_bytes = 1040;
      link.handle(pkt);
      if (remaining > 1) {
        // Twice the service rate: the queue builds up, then drains during
        // the inter-burst gap.
        sim.schedule(transmission_time(1040, mbps(20)),
                     BurstSource{sim, link, remaining - 1});
      }
    }
  };

  // Warm-up: grow the queue ring, the in-flight rings, and the slot slabs.
  sim.schedule(0.0, BurstSource{sim, *link, 500});
  sim.run();
  const long long warm_received = sink->received;
  ASSERT_GT(warm_received, 0);

  const std::size_t before = g_new_calls;
  sim.schedule(0.0, BurstSource{sim, *link, 500});
  sim.run();
  const std::size_t after = g_new_calls;

  EXPECT_EQ(sink->received, 2 * warm_received)
      << "identical bursts through an identical pipeline";
  EXPECT_EQ(arrivals, 1000);
  EXPECT_GT(departures, 0);
  EXPECT_EQ(after - before, 0u)
      << "a warmed-up tapped link must move packets without allocating";
}

TEST(AllocTest, WarmResetRebuildRunsAllocationFree) {
  // The sweep engine's warm-reuse contract: after one cold
  // build+run+reset cycle has sized the arena, the scheduler slabs, and
  // every pmr container, repeating the identical cycle must not touch the
  // system allocator at all — construction included.
  Simulator sim(3);

  struct CountingSink : PacketHandler {
    long long received = 0;
    void handle(Packet) override { ++received; }
  };

  constexpr std::uint64_t kQueueStream = 0x71756575'65000000ULL;
  long long cold_received = 0;

  const auto build_and_run = [&](long long& received_out) {
    auto* sink = sim.make<CountingSink>();
    auto* dst = sim.make<Node>(NodeId{1}, "dst", sim.memory());
    dst->attach(FlowId{-2000}, sink);  // CbrSource's default flow id
    auto* red = sim.make<RedQueue>(RedParams::paper_testbed(32),
                                   sim.stream(kQueueStream), sim.memory());
    auto* link = sim.make<Link>(sim, "bottleneck", mbps(10), ms(5), red, dst);
    auto* src = sim.make<Node>(NodeId{0}, "src", sim.memory());
    src->add_route(NodeId{1}, link);
    auto* cbr = sim.make<CbrSource>(sim, mbps(12), 1040, NodeId{0}, NodeId{1},
                                    src);
    cbr->start(0.0);
    sim.run_until(sec(2.0));
    received_out = sink->received;
  };

  // Cold cycle: grows every slab to its high-water mark.
  build_and_run(cold_received);
  ASSERT_GT(cold_received, 0);
  sim.reset(3);
  // One warm cycle to let lazily-grown structures (rings that wrapped at a
  // different fill point, the dtor list) settle at their final capacity.
  long long warm_received = 0;
  build_and_run(warm_received);
  EXPECT_EQ(warm_received, cold_received) << "reset must be deterministic";
  sim.reset(3);

  const std::size_t before = g_new_calls;
  long long steady_received = 0;
  build_and_run(steady_received);
  sim.reset(3);
  const std::size_t after = g_new_calls;

  EXPECT_EQ(steady_received, cold_received);
  EXPECT_EQ(after - before, 0u)
      << "a warm rebuild+run+reset cycle must not allocate";
}

}  // namespace
}  // namespace pdos
