#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/assert.hpp"

namespace pdos {
namespace {

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_DOUBLE_EQ(sched.now(), 0.0);
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(3.0, [&] { order.push_back(3); });
  sched.schedule(1.0, [&] { order.push_back(1); });
  sched.schedule(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(SchedulerTest, SimultaneousEventsRunFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, NowAdvancesToEventTime) {
  Scheduler sched;
  Time seen = -1.0;
  sched.schedule(2.5, [&] { seen = sched.now(); });
  sched.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(1.0, [&] {
    ++fired;
    sched.schedule(1.0, [&] { ++fired; });
  });
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
}

TEST(SchedulerTest, RunUntilStopsAtHorizon) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(1.0, [&] { ++fired; });
  sched.schedule(5.0, [&] { ++fired; });
  sched.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  EXPECT_EQ(sched.queue_size(), 1u);
  sched.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, RunUntilIncludesEventAtExactHorizon) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(2.0, [&] { ++fired; });
  sched.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.schedule(1.0, [&] { ++fired; });
  EXPECT_TRUE(sched.pending(id));
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.pending(id));
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(SchedulerTest, CancelTwiceIsANoOp) {
  Scheduler sched;
  const EventId id = sched.schedule(1.0, [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
}

TEST(SchedulerTest, CancelAfterFiringIsANoOp) {
  Scheduler sched;
  const EventId id = sched.schedule(1.0, [] {});
  sched.run();
  EXPECT_FALSE(sched.cancel(id));
}

TEST(SchedulerTest, CancelledEventsDoNotBlockLaterOnes) {
  Scheduler sched;
  std::vector<int> order;
  const EventId id = sched.schedule(1.0, [&] { order.push_back(1); });
  sched.schedule(2.0, [&] { order.push_back(2); });
  sched.cancel(id);
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(SchedulerTest, QueueSizeTracksCancellations) {
  Scheduler sched;
  const EventId a = sched.schedule(1.0, [] {});
  sched.schedule(2.0, [] {});
  EXPECT_EQ(sched.queue_size(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.queue_size(), 1u);
}

TEST(SchedulerTest, NegativeDelayThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule(-1.0, [] {}), ParameterError);
}

TEST(SchedulerTest, ScheduleAtPastThrows) {
  Scheduler sched;
  sched.schedule(1.0, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(0.5, [] {}), ParameterError);
}

TEST(SchedulerTest, StepExecutesSingleEvent) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(1.0, [&] { ++fired; });
  sched.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sched.step());
}

TEST(SchedulerTest, EventsExecutedCounter) {
  Scheduler sched;
  for (int i = 0; i < 5; ++i) sched.schedule(i, [] {});
  sched.run();
  EXPECT_EQ(sched.events_executed(), 5u);
}

TEST(SchedulerTest, ZeroDelayRunsAtCurrentTime) {
  Scheduler sched;
  Time seen = -1.0;
  sched.schedule(1.0, [&] {
    sched.schedule(0.0, [&] { seen = sched.now(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(seen, 1.0);
}

TEST(SchedulerTest, ManyEventsStressOrdering) {
  Scheduler sched;
  Time last = -1.0;
  bool monotonic = true;
  for (int i = 0; i < 5000; ++i) {
    const Time when = static_cast<Time>((i * 7919) % 1000) / 10.0;
    sched.schedule(when, [&, when] {
      if (when < last) monotonic = false;
      last = when;
    });
  }
  sched.run();
  EXPECT_TRUE(monotonic);
}

}  // namespace
}  // namespace pdos
