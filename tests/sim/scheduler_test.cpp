#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pdos {
namespace {

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler sched;
  EXPECT_DOUBLE_EQ(sched.now(), 0.0);
  EXPECT_TRUE(sched.empty());
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule(3.0, [&] { order.push_back(3); });
  sched.schedule(1.0, [&] { order.push_back(1); });
  sched.schedule(2.0, [&] { order.push_back(2); });
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sched.now(), 3.0);
}

TEST(SchedulerTest, SimultaneousEventsRunFifo) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sched.schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sched.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, NowAdvancesToEventTime) {
  Scheduler sched;
  Time seen = -1.0;
  sched.schedule(2.5, [&] { seen = sched.now(); });
  sched.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(SchedulerTest, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(1.0, [&] {
    ++fired;
    sched.schedule(1.0, [&] { ++fired; });
  });
  sched.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
}

TEST(SchedulerTest, RunUntilStopsAtHorizon) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(1.0, [&] { ++fired; });
  sched.schedule(5.0, [&] { ++fired; });
  sched.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sched.now(), 2.0);
  EXPECT_EQ(sched.queue_size(), 1u);
  sched.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, RunUntilIncludesEventAtExactHorizon) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(2.0, [&] { ++fired; });
  sched.run_until(2.0);
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler sched;
  int fired = 0;
  const EventId id = sched.schedule(1.0, [&] { ++fired; });
  EXPECT_TRUE(sched.pending(id));
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.pending(id));
  sched.run();
  EXPECT_EQ(fired, 0);
}

TEST(SchedulerTest, CancelTwiceIsANoOp) {
  Scheduler sched;
  const EventId id = sched.schedule(1.0, [] {});
  EXPECT_TRUE(sched.cancel(id));
  EXPECT_FALSE(sched.cancel(id));
}

TEST(SchedulerTest, CancelAfterFiringIsANoOp) {
  Scheduler sched;
  const EventId id = sched.schedule(1.0, [] {});
  sched.run();
  EXPECT_FALSE(sched.cancel(id));
}

TEST(SchedulerTest, CancelledEventsDoNotBlockLaterOnes) {
  Scheduler sched;
  std::vector<int> order;
  const EventId id = sched.schedule(1.0, [&] { order.push_back(1); });
  sched.schedule(2.0, [&] { order.push_back(2); });
  sched.cancel(id);
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(SchedulerTest, QueueSizeTracksCancellations) {
  Scheduler sched;
  const EventId a = sched.schedule(1.0, [] {});
  sched.schedule(2.0, [] {});
  EXPECT_EQ(sched.queue_size(), 2u);
  sched.cancel(a);
  EXPECT_EQ(sched.queue_size(), 1u);
}

TEST(SchedulerTest, NegativeDelayThrows) {
  Scheduler sched;
  EXPECT_THROW(sched.schedule(-1.0, [] {}), ParameterError);
}

TEST(SchedulerTest, ScheduleAtPastThrows) {
  Scheduler sched;
  sched.schedule(1.0, [] {});
  sched.run();
  EXPECT_THROW(sched.schedule_at(0.5, [] {}), ParameterError);
}

TEST(SchedulerTest, StepExecutesSingleEvent) {
  Scheduler sched;
  int fired = 0;
  sched.schedule(1.0, [&] { ++fired; });
  sched.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sched.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sched.step());
}

TEST(SchedulerTest, EventsExecutedCounter) {
  Scheduler sched;
  for (int i = 0; i < 5; ++i) sched.schedule(i, [] {});
  sched.run();
  EXPECT_EQ(sched.events_executed(), 5u);
}

TEST(SchedulerTest, ZeroDelayRunsAtCurrentTime) {
  Scheduler sched;
  Time seen = -1.0;
  sched.schedule(1.0, [&] {
    sched.schedule(0.0, [&] { seen = sched.now(); });
  });
  sched.run();
  EXPECT_DOUBLE_EQ(seen, 1.0);
}

TEST(SchedulerTest, PopUnderInterleavedCancels) {
  // Regression for the old priority_queue implementation, which lazily
  // retained cancelled entries and fished live ones out with a
  // const_cast-and-move at pop time. Interleaving cancels between pops —
  // including cancelling the current minimum right before it would fire —
  // must leave execution order and the pending set exact.
  Scheduler sched;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(sched.schedule(static_cast<Time>(i % 8),
                                 [&fired, i] { fired.push_back(i); }));
  }
  std::vector<int> expect;
  for (int round = 0; round < 8; ++round) {
    // Cancel the first still-pending event by insertion order plus an
    // arbitrary later one, then pop a few.
    for (int i = 0; i < 64; ++i) {
      if (sched.pending(ids[i])) {
        EXPECT_TRUE(sched.cancel(ids[i]));
        EXPECT_FALSE(sched.pending(ids[i]));
        break;
      }
    }
    const int victim = (round * 23 + 40) % 64;
    sched.cancel(ids[victim]);
    for (int p = 0; p < 6 && sched.step(); ++p) {
    }
  }
  sched.run();
  // Rebuild the expected order: time bins ascending, FIFO (ascending i)
  // within each bin, restricted to the events that actually fired.
  std::vector<int> expected;
  for (int bin = 0; bin < 8; ++bin) {
    for (int i = bin; i < 64; i += 8) {
      if (std::find(fired.begin(), fired.end(), i) != fired.end()) {
        expected.push_back(i);
      }
    }
  }
  EXPECT_EQ(fired, expected) << "events must fire in (time, insertion) order";
}

TEST(SchedulerTest, StaleIdsStayDeadAfterSlotReuse) {
  Scheduler sched;
  const EventId first = sched.schedule(1.0, [] {});
  ASSERT_TRUE(sched.cancel(first));
  // The freed slot is recycled by the next schedule; the generation tag
  // must keep the old handle dead rather than aliasing the new event.
  int fired = 0;
  const EventId second = sched.schedule(2.0, [&] { ++fired; });
  EXPECT_FALSE(sched.pending(first));
  EXPECT_FALSE(sched.cancel(first));
  EXPECT_TRUE(sched.pending(second));
  sched.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sched.pending(second));
  EXPECT_FALSE(sched.cancel(second));
}

TEST(SchedulerTest, RescheduleAtMovesEventInPlace) {
  Scheduler sched;
  std::vector<int> order;
  const EventId id = sched.schedule(5.0, [&] { order.push_back(0); });
  sched.schedule(2.0, [&] { order.push_back(1); });
  EXPECT_TRUE(sched.reschedule_at(id, 1.0));  // ahead of the other event
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_FALSE(sched.reschedule_at(id, 9.0)) << "fired ids cannot move";
}

TEST(SchedulerTest, RescheduleMatchesCancelPlusScheduleTieBreaking) {
  // A rescheduled event must fire in FIFO position as if it had been
  // cancelled and freshly scheduled — i.e. after events already waiting at
  // the destination time.
  Scheduler sched;
  std::vector<int> order;
  const EventId moved = sched.schedule(1.0, [&] { order.push_back(0); });
  sched.schedule(3.0, [&] { order.push_back(1); });
  sched.schedule(3.0, [&] { order.push_back(2); });
  EXPECT_TRUE(sched.reschedule(moved, 3.0));
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(SchedulerTest, ReschedulePastThrows) {
  Scheduler sched;
  sched.schedule(1.0, [] {});
  const EventId id = sched.schedule(5.0, [] {});
  sched.run_until(2.0);
  EXPECT_THROW(sched.reschedule_at(id, 1.0), ParameterError);
}

// Reference model for the property test: a sorted-vector event queue with
// the same (time, insertion-order) contract as the real scheduler.
class ReferenceScheduler {
 public:
  std::uint64_t schedule(double when, int payload) {
    const std::uint64_t id = next_id_++;
    entries_.push_back(Entry{when, id, payload});
    return id;
  }

  bool cancel(std::uint64_t id) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->id == id) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  bool pending(std::uint64_t id) const {
    for (const Entry& e : entries_) {
      if (e.id == id) return true;
    }
    return false;
  }

  /// Pop every event with when <= horizon, in (when, id) order.
  std::vector<int> run_until(double horizon) {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) {
                       if (a.when != b.when) return a.when < b.when;
                       return a.id < b.id;
                     });
    std::vector<int> fired;
    std::size_t n = 0;
    while (n < entries_.size() && entries_[n].when <= horizon) {
      fired.push_back(entries_[n].payload);
      ++n;
    }
    entries_.erase(entries_.begin(), entries_.begin() + n);
    now_ = horizon;
    return fired;
  }

  double now() const { return now_; }
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    double when;
    std::uint64_t id;
    int payload;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_id_ = 0;
  double now_ = 0.0;
};

TEST(SchedulerPropertyTest, MatchesReferenceModelUnderRandomWorkloads) {
  // Randomized schedule / cancel / reschedule / run interleavings checked
  // against the naive model: identical firing order (including FIFO ties —
  // delays are drawn from a tiny set to force collisions) and identical
  // pending() on every outstanding handle after every batch.
  std::mt19937 rng(20260806);
  for (int trial = 0; trial < 40; ++trial) {
    Scheduler sched;
    ReferenceScheduler ref;
    std::vector<int> real_fired;
    struct Handle {
      EventId real;
      std::uint64_t ref;
      int tag;
    };
    std::vector<Handle> handles;
    int payload = 0;

    for (int batch = 0; batch < 30; ++batch) {
      const int ops = static_cast<int>(rng() % 12) + 1;
      for (int op = 0; op < ops; ++op) {
        const std::uint32_t kind = rng() % 8;
        if (kind < 4) {  // schedule, delays collide on purpose
          const double delay = static_cast<double>(rng() % 5);
          const int tag = payload++;
          const EventId real = sched.schedule(
              delay, [&real_fired, tag] { real_fired.push_back(tag); });
          handles.push_back(
              Handle{real, ref.schedule(sched.now() + delay, tag), tag});
        } else if (kind < 6 && !handles.empty()) {  // cancel a random handle
          const Handle& h = handles[rng() % handles.size()];
          EXPECT_EQ(sched.cancel(h.real), ref.cancel(h.ref));
        } else if (!handles.empty()) {  // reschedule a random handle
          Handle& h = handles[rng() % handles.size()];
          const double when = sched.now() + static_cast<double>(rng() % 5);
          const bool moved = sched.reschedule_at(h.real, when);
          EXPECT_EQ(moved, ref.cancel(h.ref));
          if (moved) {
            // Model contract: a reschedule is a cancel plus a fresh
            // schedule of the same payload (new insertion order).
            h.ref = ref.schedule(when, h.tag);
          }
        }
      }
      const double horizon = sched.now() + static_cast<double>(rng() % 4);
      const std::vector<int> ref_fired = ref.run_until(horizon);
      real_fired.clear();
      sched.run_until(horizon);
      EXPECT_EQ(real_fired, ref_fired) << "trial " << trial;
      EXPECT_EQ(sched.queue_size(), ref.size());
      for (const Handle& h : handles) {
        EXPECT_EQ(sched.pending(h.real), ref.pending(h.ref));
      }
    }
  }
}

TEST(SchedulerTest, ManyEventsStressOrdering) {
  Scheduler sched;
  Time last = -1.0;
  bool monotonic = true;
  for (int i = 0; i < 5000; ++i) {
    const Time when = static_cast<Time>((i * 7919) % 1000) / 10.0;
    sched.schedule(when, [&, when] {
      if (when < last) monotonic = false;
      last = when;
    });
  }
  sched.run();
  EXPECT_TRUE(monotonic);
}

}  // namespace
}  // namespace pdos
