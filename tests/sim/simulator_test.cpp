#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace pdos {
namespace {

TEST(SimulatorTest, ScheduleAndCancelDelegates) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] { ++fired; });
  const EventId id = sim.schedule(2.0, [&] { ++fired; });
  sim.cancel(id);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(SimulatorTest, RunUntilAdvancesClock) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulatorTest, ArenaKeepsComponentsAlive) {
  Simulator sim;
  struct Probe {
    explicit Probe(int* counter) : counter_(counter) { ++*counter_; }
    ~Probe() { --*counter_; }
    int* counter_;
  };
  int alive = 0;
  {
    auto* a = sim.make<Probe>(&alive);
    auto* b = sim.make<Probe>(&alive);
    EXPECT_NE(a, b);
    EXPECT_EQ(alive, 2);
  }
  // Scope exit does not destroy arena members...
  EXPECT_EQ(alive, 2);
  // ...only Simulator destruction does (checked via a nested scope).
  {
    int inner_alive = 0;
    {
      Simulator inner;
      inner.make<Probe>(&inner_alive);
      EXPECT_EQ(inner_alive, 1);
    }
    EXPECT_EQ(inner_alive, 0);
  }
}

TEST(SimulatorTest, SeededRngIsReproducible) {
  Simulator a(77);
  Simulator b(77);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.rng().uniform(), b.rng().uniform());
  }
}

TEST(SimulatorTest, EventsSeeAdvancedClock) {
  Simulator sim;
  Time inner = -1.0;
  sim.schedule(2.5, [&] {
    inner = sim.now();
    sim.schedule(0.5, [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(inner, 3.0);
}

}  // namespace
}  // namespace pdos
