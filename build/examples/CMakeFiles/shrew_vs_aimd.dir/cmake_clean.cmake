file(REMOVE_RECURSE
  "CMakeFiles/shrew_vs_aimd.dir/shrew_vs_aimd.cpp.o"
  "CMakeFiles/shrew_vs_aimd.dir/shrew_vs_aimd.cpp.o.d"
  "shrew_vs_aimd"
  "shrew_vs_aimd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shrew_vs_aimd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
