# Empty compiler generated dependencies file for shrew_vs_aimd.
# This may be replaced when dependencies are built.
