# Empty compiler generated dependencies file for sync_visualizer.
# This may be replaced when dependencies are built.
