file(REMOVE_RECURSE
  "CMakeFiles/sync_visualizer.dir/sync_visualizer.cpp.o"
  "CMakeFiles/sync_visualizer.dir/sync_visualizer.cpp.o.d"
  "sync_visualizer"
  "sync_visualizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_visualizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
