file(REMOVE_RECURSE
  "CMakeFiles/attack_planner.dir/attack_planner.cpp.o"
  "CMakeFiles/attack_planner.dir/attack_planner.cpp.o.d"
  "attack_planner"
  "attack_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
