# Empty dependencies file for attack_planner.
# This may be replaced when dependencies are built.
