file(REMOVE_RECURSE
  "CMakeFiles/fig08_gain_35mbps.dir/fig08_gain_35mbps.cpp.o"
  "CMakeFiles/fig08_gain_35mbps.dir/fig08_gain_35mbps.cpp.o.d"
  "fig08_gain_35mbps"
  "fig08_gain_35mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_gain_35mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
