# Empty dependencies file for fig08_gain_35mbps.
# This may be replaced when dependencies are built.
