# Empty compiler generated dependencies file for abl_cross_traffic.
# This may be replaced when dependencies are built.
