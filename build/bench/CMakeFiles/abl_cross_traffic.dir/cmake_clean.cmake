file(REMOVE_RECURSE
  "CMakeFiles/abl_cross_traffic.dir/abl_cross_traffic.cpp.o"
  "CMakeFiles/abl_cross_traffic.dir/abl_cross_traffic.cpp.o.d"
  "abl_cross_traffic"
  "abl_cross_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cross_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
