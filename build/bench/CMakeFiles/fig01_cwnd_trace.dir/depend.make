# Empty dependencies file for fig01_cwnd_trace.
# This may be replaced when dependencies are built.
