file(REMOVE_RECURSE
  "CMakeFiles/abl_roq.dir/abl_roq.cpp.o"
  "CMakeFiles/abl_roq.dir/abl_roq.cpp.o.d"
  "abl_roq"
  "abl_roq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_roq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
