# Empty dependencies file for abl_roq.
# This may be replaced when dependencies are built.
