file(REMOVE_RECURSE
  "CMakeFiles/abl_variants.dir/abl_variants.cpp.o"
  "CMakeFiles/abl_variants.dir/abl_variants.cpp.o.d"
  "abl_variants"
  "abl_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
