# Empty compiler generated dependencies file for abl_variants.
# This may be replaced when dependencies are built.
