# Empty dependencies file for abl_defense.
# This may be replaced when dependencies are built.
