file(REMOVE_RECURSE
  "CMakeFiles/abl_defense.dir/abl_defense.cpp.o"
  "CMakeFiles/abl_defense.dir/abl_defense.cpp.o.d"
  "abl_defense"
  "abl_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
