file(REMOVE_RECURSE
  "CMakeFiles/fig03_sync.dir/fig03_sync.cpp.o"
  "CMakeFiles/fig03_sync.dir/fig03_sync.cpp.o.d"
  "fig03_sync"
  "fig03_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
