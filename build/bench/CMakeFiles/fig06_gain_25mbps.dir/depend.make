# Empty dependencies file for fig06_gain_25mbps.
# This may be replaced when dependencies are built.
