file(REMOVE_RECURSE
  "CMakeFiles/fig06_gain_25mbps.dir/fig06_gain_25mbps.cpp.o"
  "CMakeFiles/fig06_gain_25mbps.dir/fig06_gain_25mbps.cpp.o.d"
  "fig06_gain_25mbps"
  "fig06_gain_25mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gain_25mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
