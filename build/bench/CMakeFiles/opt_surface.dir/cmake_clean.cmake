file(REMOVE_RECURSE
  "CMakeFiles/opt_surface.dir/opt_surface.cpp.o"
  "CMakeFiles/opt_surface.dir/opt_surface.cpp.o.d"
  "opt_surface"
  "opt_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
