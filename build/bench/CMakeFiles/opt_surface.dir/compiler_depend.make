# Empty compiler generated dependencies file for opt_surface.
# This may be replaced when dependencies are built.
