file(REMOVE_RECURSE
  "CMakeFiles/abl_timeout_model.dir/abl_timeout_model.cpp.o"
  "CMakeFiles/abl_timeout_model.dir/abl_timeout_model.cpp.o.d"
  "abl_timeout_model"
  "abl_timeout_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_timeout_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
