# Empty compiler generated dependencies file for abl_timeout_model.
# This may be replaced when dependencies are built.
