file(REMOVE_RECURSE
  "CMakeFiles/fig04_risk_curves.dir/fig04_risk_curves.cpp.o"
  "CMakeFiles/fig04_risk_curves.dir/fig04_risk_curves.cpp.o.d"
  "fig04_risk_curves"
  "fig04_risk_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_risk_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
