# Empty compiler generated dependencies file for fig04_risk_curves.
# This may be replaced when dependencies are built.
