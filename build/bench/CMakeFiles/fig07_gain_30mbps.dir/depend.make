# Empty dependencies file for fig07_gain_30mbps.
# This may be replaced when dependencies are built.
