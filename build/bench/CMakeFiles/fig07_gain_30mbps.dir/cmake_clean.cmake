file(REMOVE_RECURSE
  "CMakeFiles/fig07_gain_30mbps.dir/fig07_gain_30mbps.cpp.o"
  "CMakeFiles/fig07_gain_30mbps.dir/fig07_gain_30mbps.cpp.o.d"
  "fig07_gain_30mbps"
  "fig07_gain_30mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_gain_30mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
