file(REMOVE_RECURSE
  "CMakeFiles/abl_queue_detect.dir/abl_queue_detect.cpp.o"
  "CMakeFiles/abl_queue_detect.dir/abl_queue_detect.cpp.o.d"
  "abl_queue_detect"
  "abl_queue_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_queue_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
