# Empty dependencies file for abl_queue_detect.
# This may be replaced when dependencies are built.
