# Empty dependencies file for abl_distributed.
# This may be replaced when dependencies are built.
