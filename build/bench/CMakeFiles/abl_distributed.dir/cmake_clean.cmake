file(REMOVE_RECURSE
  "CMakeFiles/abl_distributed.dir/abl_distributed.cpp.o"
  "CMakeFiles/abl_distributed.dir/abl_distributed.cpp.o.d"
  "abl_distributed"
  "abl_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
