file(REMOVE_RECURSE
  "CMakeFiles/fig12_testbed.dir/fig12_testbed.cpp.o"
  "CMakeFiles/fig12_testbed.dir/fig12_testbed.cpp.o.d"
  "fig12_testbed"
  "fig12_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
