# Empty compiler generated dependencies file for fig12_testbed.
# This may be replaced when dependencies are built.
