
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig12_testbed.cpp" "bench/CMakeFiles/fig12_testbed.dir/fig12_testbed.cpp.o" "gcc" "bench/CMakeFiles/fig12_testbed.dir/fig12_testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/pdos_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/pdos_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/pdos_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pdos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pdos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pdos_io.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/pdos_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
