# Empty dependencies file for fig10_shrew.
# This may be replaced when dependencies are built.
