file(REMOVE_RECURSE
  "CMakeFiles/fig10_shrew.dir/fig10_shrew.cpp.o"
  "CMakeFiles/fig10_shrew.dir/fig10_shrew.cpp.o.d"
  "fig10_shrew"
  "fig10_shrew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_shrew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
