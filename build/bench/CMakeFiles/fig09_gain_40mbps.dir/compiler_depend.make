# Empty compiler generated dependencies file for fig09_gain_40mbps.
# This may be replaced when dependencies are built.
