file(REMOVE_RECURSE
  "CMakeFiles/fig09_gain_40mbps.dir/fig09_gain_40mbps.cpp.o"
  "CMakeFiles/fig09_gain_40mbps.dir/fig09_gain_40mbps.cpp.o.d"
  "fig09_gain_40mbps"
  "fig09_gain_40mbps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_gain_40mbps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
