# Empty compiler generated dependencies file for pdos_util.
# This may be replaced when dependencies are built.
