file(REMOVE_RECURSE
  "libpdos_util.a"
)
