file(REMOVE_RECURSE
  "CMakeFiles/pdos_util.dir/logging.cpp.o"
  "CMakeFiles/pdos_util.dir/logging.cpp.o.d"
  "CMakeFiles/pdos_util.dir/rng.cpp.o"
  "CMakeFiles/pdos_util.dir/rng.cpp.o.d"
  "libpdos_util.a"
  "libpdos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
