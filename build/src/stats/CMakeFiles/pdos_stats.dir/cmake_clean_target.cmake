file(REMOVE_RECURSE
  "libpdos_stats.a"
)
