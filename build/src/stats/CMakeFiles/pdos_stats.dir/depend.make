# Empty dependencies file for pdos_stats.
# This may be replaced when dependencies are built.
