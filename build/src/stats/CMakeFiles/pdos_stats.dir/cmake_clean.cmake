file(REMOVE_RECURSE
  "CMakeFiles/pdos_stats.dir/fairness.cpp.o"
  "CMakeFiles/pdos_stats.dir/fairness.cpp.o.d"
  "CMakeFiles/pdos_stats.dir/jitter.cpp.o"
  "CMakeFiles/pdos_stats.dir/jitter.cpp.o.d"
  "CMakeFiles/pdos_stats.dir/timeseries.cpp.o"
  "CMakeFiles/pdos_stats.dir/timeseries.cpp.o.d"
  "libpdos_stats.a"
  "libpdos_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
