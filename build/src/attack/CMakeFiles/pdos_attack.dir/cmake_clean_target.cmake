file(REMOVE_RECURSE
  "libpdos_attack.a"
)
