file(REMOVE_RECURSE
  "CMakeFiles/pdos_attack.dir/distributed.cpp.o"
  "CMakeFiles/pdos_attack.dir/distributed.cpp.o.d"
  "CMakeFiles/pdos_attack.dir/pulse.cpp.o"
  "CMakeFiles/pdos_attack.dir/pulse.cpp.o.d"
  "CMakeFiles/pdos_attack.dir/shrew.cpp.o"
  "CMakeFiles/pdos_attack.dir/shrew.cpp.o.d"
  "libpdos_attack.a"
  "libpdos_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
