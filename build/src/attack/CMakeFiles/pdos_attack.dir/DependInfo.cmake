
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/distributed.cpp" "src/attack/CMakeFiles/pdos_attack.dir/distributed.cpp.o" "gcc" "src/attack/CMakeFiles/pdos_attack.dir/distributed.cpp.o.d"
  "/root/repo/src/attack/pulse.cpp" "src/attack/CMakeFiles/pdos_attack.dir/pulse.cpp.o" "gcc" "src/attack/CMakeFiles/pdos_attack.dir/pulse.cpp.o.d"
  "/root/repo/src/attack/shrew.cpp" "src/attack/CMakeFiles/pdos_attack.dir/shrew.cpp.o" "gcc" "src/attack/CMakeFiles/pdos_attack.dir/shrew.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/pdos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pdos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
