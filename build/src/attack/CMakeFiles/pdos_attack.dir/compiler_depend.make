# Empty compiler generated dependencies file for pdos_attack.
# This may be replaced when dependencies are built.
