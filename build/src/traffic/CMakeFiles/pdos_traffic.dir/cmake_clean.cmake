file(REMOVE_RECURSE
  "CMakeFiles/pdos_traffic.dir/sources.cpp.o"
  "CMakeFiles/pdos_traffic.dir/sources.cpp.o.d"
  "libpdos_traffic.a"
  "libpdos_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
