# Empty compiler generated dependencies file for pdos_traffic.
# This may be replaced when dependencies are built.
