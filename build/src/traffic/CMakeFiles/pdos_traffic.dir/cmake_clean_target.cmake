file(REMOVE_RECURSE
  "libpdos_traffic.a"
)
