file(REMOVE_RECURSE
  "CMakeFiles/pdos_net.dir/droptail.cpp.o"
  "CMakeFiles/pdos_net.dir/droptail.cpp.o.d"
  "CMakeFiles/pdos_net.dir/link.cpp.o"
  "CMakeFiles/pdos_net.dir/link.cpp.o.d"
  "CMakeFiles/pdos_net.dir/node.cpp.o"
  "CMakeFiles/pdos_net.dir/node.cpp.o.d"
  "CMakeFiles/pdos_net.dir/red.cpp.o"
  "CMakeFiles/pdos_net.dir/red.cpp.o.d"
  "libpdos_net.a"
  "libpdos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
