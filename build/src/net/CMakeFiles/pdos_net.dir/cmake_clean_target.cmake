file(REMOVE_RECURSE
  "libpdos_net.a"
)
