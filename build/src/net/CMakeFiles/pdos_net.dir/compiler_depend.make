# Empty compiler generated dependencies file for pdos_net.
# This may be replaced when dependencies are built.
