file(REMOVE_RECURSE
  "libpdos_io.a"
)
