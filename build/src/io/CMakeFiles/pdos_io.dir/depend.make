# Empty dependencies file for pdos_io.
# This may be replaced when dependencies are built.
