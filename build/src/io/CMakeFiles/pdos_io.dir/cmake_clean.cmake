file(REMOVE_RECURSE
  "CMakeFiles/pdos_io.dir/csv.cpp.o"
  "CMakeFiles/pdos_io.dir/csv.cpp.o.d"
  "CMakeFiles/pdos_io.dir/gnuplot.cpp.o"
  "CMakeFiles/pdos_io.dir/gnuplot.cpp.o.d"
  "CMakeFiles/pdos_io.dir/trace.cpp.o"
  "CMakeFiles/pdos_io.dir/trace.cpp.o.d"
  "libpdos_io.a"
  "libpdos_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
