# Empty compiler generated dependencies file for pdos_core.
# This may be replaced when dependencies are built.
