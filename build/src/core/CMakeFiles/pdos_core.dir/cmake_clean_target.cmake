file(REMOVE_RECURSE
  "libpdos_core.a"
)
