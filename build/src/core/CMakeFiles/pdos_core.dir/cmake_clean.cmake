file(REMOVE_RECURSE
  "CMakeFiles/pdos_core.dir/experiment.cpp.o"
  "CMakeFiles/pdos_core.dir/experiment.cpp.o.d"
  "CMakeFiles/pdos_core.dir/model.cpp.o"
  "CMakeFiles/pdos_core.dir/model.cpp.o.d"
  "CMakeFiles/pdos_core.dir/optimizer.cpp.o"
  "CMakeFiles/pdos_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/pdos_core.dir/planner.cpp.o"
  "CMakeFiles/pdos_core.dir/planner.cpp.o.d"
  "CMakeFiles/pdos_core.dir/roq.cpp.o"
  "CMakeFiles/pdos_core.dir/roq.cpp.o.d"
  "CMakeFiles/pdos_core.dir/timeout_model.cpp.o"
  "CMakeFiles/pdos_core.dir/timeout_model.cpp.o.d"
  "libpdos_core.a"
  "libpdos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
