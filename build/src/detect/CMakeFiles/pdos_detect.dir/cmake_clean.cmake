file(REMOVE_RECURSE
  "CMakeFiles/pdos_detect.dir/dtw_detector.cpp.o"
  "CMakeFiles/pdos_detect.dir/dtw_detector.cpp.o.d"
  "CMakeFiles/pdos_detect.dir/rate_detector.cpp.o"
  "CMakeFiles/pdos_detect.dir/rate_detector.cpp.o.d"
  "libpdos_detect.a"
  "libpdos_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
