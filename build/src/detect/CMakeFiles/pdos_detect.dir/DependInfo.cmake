
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/dtw_detector.cpp" "src/detect/CMakeFiles/pdos_detect.dir/dtw_detector.cpp.o" "gcc" "src/detect/CMakeFiles/pdos_detect.dir/dtw_detector.cpp.o.d"
  "/root/repo/src/detect/rate_detector.cpp" "src/detect/CMakeFiles/pdos_detect.dir/rate_detector.cpp.o" "gcc" "src/detect/CMakeFiles/pdos_detect.dir/rate_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/pdos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pdos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
