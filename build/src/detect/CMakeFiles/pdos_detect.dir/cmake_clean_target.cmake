file(REMOVE_RECURSE
  "libpdos_detect.a"
)
