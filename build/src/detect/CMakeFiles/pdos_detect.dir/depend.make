# Empty dependencies file for pdos_detect.
# This may be replaced when dependencies are built.
