# Empty dependencies file for pdos_tcp.
# This may be replaced when dependencies are built.
