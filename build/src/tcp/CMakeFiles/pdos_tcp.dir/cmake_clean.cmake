file(REMOVE_RECURSE
  "CMakeFiles/pdos_tcp.dir/connection.cpp.o"
  "CMakeFiles/pdos_tcp.dir/connection.cpp.o.d"
  "CMakeFiles/pdos_tcp.dir/tcp_receiver.cpp.o"
  "CMakeFiles/pdos_tcp.dir/tcp_receiver.cpp.o.d"
  "CMakeFiles/pdos_tcp.dir/tcp_sender.cpp.o"
  "CMakeFiles/pdos_tcp.dir/tcp_sender.cpp.o.d"
  "libpdos_tcp.a"
  "libpdos_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
