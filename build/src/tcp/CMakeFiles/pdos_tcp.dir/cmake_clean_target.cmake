file(REMOVE_RECURSE
  "libpdos_tcp.a"
)
