file(REMOVE_RECURSE
  "libpdos_sim.a"
)
