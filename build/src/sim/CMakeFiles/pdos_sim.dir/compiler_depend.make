# Empty compiler generated dependencies file for pdos_sim.
# This may be replaced when dependencies are built.
