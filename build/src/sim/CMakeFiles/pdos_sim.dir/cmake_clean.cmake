file(REMOVE_RECURSE
  "CMakeFiles/pdos_sim.dir/scheduler.cpp.o"
  "CMakeFiles/pdos_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/pdos_sim.dir/simulator.cpp.o"
  "CMakeFiles/pdos_sim.dir/simulator.cpp.o.d"
  "libpdos_sim.a"
  "libpdos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
