file(REMOVE_RECURSE
  "CMakeFiles/roq_test.dir/core/roq_test.cpp.o"
  "CMakeFiles/roq_test.dir/core/roq_test.cpp.o.d"
  "roq_test"
  "roq_test.pdb"
  "roq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
