# Empty compiler generated dependencies file for roq_test.
# This may be replaced when dependencies are built.
