file(REMOVE_RECURSE
  "CMakeFiles/timeout_model_test.dir/core/timeout_model_test.cpp.o"
  "CMakeFiles/timeout_model_test.dir/core/timeout_model_test.cpp.o.d"
  "timeout_model_test"
  "timeout_model_test.pdb"
  "timeout_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeout_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
