# Empty dependencies file for timeout_model_test.
# This may be replaced when dependencies are built.
