file(REMOVE_RECURSE
  "CMakeFiles/finite_transfer_test.dir/tcp/finite_transfer_test.cpp.o"
  "CMakeFiles/finite_transfer_test.dir/tcp/finite_transfer_test.cpp.o.d"
  "finite_transfer_test"
  "finite_transfer_test.pdb"
  "finite_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
