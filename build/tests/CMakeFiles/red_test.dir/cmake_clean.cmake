file(REMOVE_RECURSE
  "CMakeFiles/red_test.dir/net/red_test.cpp.o"
  "CMakeFiles/red_test.dir/net/red_test.cpp.o.d"
  "red_test"
  "red_test.pdb"
  "red_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/red_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
