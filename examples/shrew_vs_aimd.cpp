// Timeout-based (shrew) vs AIMD-based PDoS at the same average rate.
//
// Both attack classes come from [13]; this example contrasts their
// mechanisms on the simulator: the shrew train paces pulses at minRTO so
// victims sit in the TO state (timeouts dominate), while the AIMD train
// paces faster so victims cycle through fast recovery (FR dominates),
// trading per-victim severity for stealth and tunability.
#include <cstdio>

#include "attack/shrew.hpp"
#include "core/experiment.hpp"
#include "core/planner.hpp"

using namespace pdos;

namespace {

void report(const char* name, const ScenarioConfig& scenario,
            const PulseTrain& train, const RunControl& control,
            BitRate baseline) {
  const GainMeasurement point =
      measure_gain(scenario, train, 1.0, control, baseline);
  std::printf("%-28s period=%6.0fms gamma=%.2f | Gamma=%.3f  "
              "timeouts=%-4llu fast_recoveries=%-4llu\n",
              name, to_ms(train.period()), train.gamma(scenario.bottleneck),
              point.degradation,
              static_cast<unsigned long long>(point.run.total_timeouts),
              static_cast<unsigned long long>(
                  point.run.total_fast_recoveries));
}

}  // namespace

int main() {
  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(25);
  const BitRate baseline = measure_baseline(scenario, control);
  std::printf("ns-2 dumbbell, 15 flows, minRTO = %.0f ms, baseline "
              "%.2f Mbps\n\n",
              to_ms(scenario.tcp.rto_min), to_mbps(baseline));

  // Shrew: period = minRTO, wide pulses, as in Kuzmanovic & Knightly.
  PulseTrain shrew;
  shrew.textent = ms(100);
  shrew.rattack = mbps(30);
  shrew.tspace = shrew_period(scenario.tcp.rto_min, 1) - shrew.textent;
  const double gamma = shrew.gamma(scenario.bottleneck);

  // AIMD-based: same pulse shape and the SAME average rate (same gamma),
  // but the period chosen by the planner's model instead of minRTO.
  AttackPlanRequest request;
  request.victim = scenario.victim_profile();
  request.textent = ms(50);
  request.rattack = mbps(60);
  const AttackPlan aimd = plan_attack_at_gamma(request, gamma);

  std::printf("same average attack rate (%.2f Mbps, gamma = %.2f):\n",
              to_mbps(shrew.average_rate()), gamma);
  report("shrew (T_AIMD = minRTO)", scenario, shrew, control, baseline);
  report("AIMD-based (model-paced)", scenario, aimd.train, control,
         baseline);

  std::printf("\nand the AIMD attack at its *optimal* gamma "
              "(risk-neutral):\n");
  request.kappa = 1.0;
  const AttackPlan optimal = plan_attack(request);
  report("AIMD-based (gamma = gamma*)", scenario, optimal.train, control,
         baseline);
  std::printf("\n%s\n", optimal.summary().c_str());
  return 0;
}
