// Quasi-global synchronization visualizer (the phenomenon of Figs. 2-3).
//
// Runs the paper's Fig. 3(a) scenario — 24 TCP flows under a
// 50 ms / 1950 ms / 100 Mbps pulse train — and renders the normalized
// incoming traffic at the bottleneck as an ASCII strip chart, then reports
// the peak count and the recovered oscillation period (which equals the
// attack period T_AIMD, not any property of the legitimate traffic).
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "stats/timeseries.hpp"

using namespace pdos;

int main() {
  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(24);
  PulseTrain train;
  train.textent = ms(50);
  train.tspace = ms(1950);
  train.rattack = mbps(100);

  RunControl control;
  control.warmup = 0.0;
  control.measure = sec(20);
  control.bin_width = ms(100);

  std::printf("simulating 24 TCP flows + PDoS(T_extent=50ms, "
              "T_space=1950ms, R=100Mbps) for %.0f s...\n\n",
              control.measure);
  const RunResult result = run_scenario(scenario, train, control);

  const auto z = normalize_zscore(result.incoming_bins);
  // Strip chart: one row per bin, bar length from the z-score.
  std::printf("%7s  %-42s %s\n", "time", "incoming traffic (z-score)",
              "attack?");
  for (std::size_t i = 0; i < z.size(); ++i) {
    const int len = static_cast<int>((z[i] + 2.0) * 10.0);
    std::string bar(static_cast<std::size_t>(std::max(0, std::min(len, 42))),
                    '#');
    std::printf("%6.1fs  %-42s %s\n", static_cast<double>(i) * 0.1,
                bar.c_str(), result.attack_bins[i] > 0 ? "<- pulse" : "");
  }

  const Time period = estimate_period(z, control.bin_width, 5, 40);
  const std::size_t peaks = count_peaks(z, 1.0, 3);
  std::printf("\npeaks: %zu in %.0f s (one per attack period -> expect "
              "%.0f)\n",
              peaks, control.measure, control.measure / train.period());
  std::printf("recovered period: %.2f s == T_AIMD = %.2f s\n", period,
              train.period());
  std::printf("goodput under attack: %.2f Mbps of a %.0f Mbps bottleneck\n",
              to_mbps(result.goodput_rate), to_mbps(scenario.bottleneck));
  return 0;
}
