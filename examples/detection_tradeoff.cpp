// The damage-vs-stealth tradeoff, measured.
//
// For attackers of increasing risk aversion (kappa), plan the optimal
// attack, run it against the ns-2 dumbbell, and test the resulting traffic
// against a windowed rate detector. The table shows exactly what the
// paper's objective function trades: risk-averse attackers give up
// throughput degradation for a lower average rate that detection
// thresholds never see.
#include <cstdio>

#include "core/experiment.hpp"
#include "core/planner.hpp"
#include "detect/rate_detector.hpp"

using namespace pdos;

int main() {
  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(20);
  control.bin_width = ms(100);

  const BitRate baseline = measure_baseline(scenario, control);
  std::printf("baseline goodput: %.2f Mbps\n\n", to_mbps(baseline));

  AttackPlanRequest request;
  request.victim = scenario.victim_profile();
  request.textent = ms(50);
  request.rattack = mbps(25);
  request.victim_min_rto = scenario.tcp.rto_min;

  RateDetectorConfig detector_config;
  detector_config.window = sec(1.0);
  detector_config.threshold_fraction = 0.5;  // a fairly paranoid operator
  detector_config.capacity = scenario.bottleneck;

  std::printf("%8s %8s %12s %12s %14s %12s %10s\n", "kappa", "gamma*",
              "Gamma_pred", "Gamma_sim", "avg_rate_mbps", "peak_window",
              "detected");
  for (double kappa : {0.2, 0.5, 1.0, 2.0, 5.0, 10.0}) {
    request.kappa = kappa;
    const AttackPlan plan = plan_attack(request);
    const GainMeasurement point =
        measure_gain(scenario, plan.train, kappa, control, baseline);

    RateAnomalyDetector detector(detector_config);
    for (std::size_t i = 0; i < point.run.attack_bins.size(); ++i) {
      detector.observe(static_cast<double>(i) * control.bin_width,
                       static_cast<Bytes>(point.run.attack_bins[i]));
    }
    detector.finish(control.horizon());

    std::printf("%8.1f %8.3f %12.3f %12.3f %14.2f %12.2f %10s\n", kappa,
                plan.gamma, plan.predicted_degradation, point.degradation,
                to_mbps(plan.train.average_rate()),
                to_mbps(detector.peak_window_rate()),
                detector.triggered() ? "CAUGHT" : "evaded");
  }
  std::printf("\nflooding reference (gamma >= 1): always detected, "
              "threshold is %.1f Mbps per window\n",
              to_mbps(detector_config.threshold_fraction *
                      detector_config.capacity));
  return 0;
}
