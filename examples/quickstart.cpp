// Quickstart: plan an optimal PDoS attack against a known victim profile,
// simulate it on the paper's ns-2 dumbbell, and compare prediction with
// measurement.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "core/model.hpp"
#include "core/planner.hpp"

using namespace pdos;

int main() {
  // 1. Describe the target: the paper's ns-2 scenario with 15 TCP flows
  //    behind a 15 Mbps RED bottleneck.
  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(15);

  // 2. Plan the attack: 50 ms pulses at 25 Mbps, risk-neutral attacker.
  AttackPlanRequest request;
  request.victim = scenario.victim_profile();
  request.textent = ms(50);
  request.rattack = mbps(25);
  request.kappa = 1.0;
  request.victim_min_rto = scenario.tcp.rto_min;
  const AttackPlan plan = plan_attack(request);
  std::printf("%s\n\n", plan.summary().c_str());

  // 3. Simulate: baseline first, then the planned pulse train.
  RunControl control;
  control.warmup = sec(5);
  control.measure = sec(20);
  const BitRate baseline = measure_baseline(scenario, control);
  std::printf("baseline goodput: %.2f Mbps (utilization %.1f%%)\n",
              to_mbps(baseline), 100.0 * baseline / scenario.bottleneck);

  const GainMeasurement measured =
      measure_gain(scenario, plan.train, request.kappa, control, baseline);
  std::printf("under attack:     %.2f Mbps\n",
              to_mbps(measured.run.goodput_rate));
  std::printf("\n%-28s %10s %10s\n", "", "analytical", "simulated");
  std::printf("%-28s %10.3f %10.3f\n", "throughput degradation Gamma",
              plan.predicted_degradation, measured.degradation);
  std::printf("%-28s %10.3f %10.3f\n", "attack gain G", plan.predicted_gain,
              measured.gain);
  std::printf("\naverage attack rate: %.2f Mbps (gamma = %.2f) vs "
              "flooding at >= %.0f Mbps\n",
              to_mbps(plan.train.average_rate()), plan.gamma,
              to_mbps(scenario.bottleneck));
  std::printf("TCP state: %llu timeouts, %llu fast recoveries\n",
              static_cast<unsigned long long>(measured.run.total_timeouts),
              static_cast<unsigned long long>(
                  measured.run.total_fast_recoveries));
  return 0;
}
