// Attack-planner CLI: the library's optimization pipeline end to end.
//
// Describe a victim (bottleneck rate, flow count, RTT range) and a pulse
// shape on the command line; the planner prints the optimal settings for
// risk-loving, risk-neutral and risk-averse attackers, plus the full
// gain-vs-gamma landscape those optima sit on.
//
// Usage: attack_planner [flows] [bottleneck_mbps] [textent_ms]
//                       [rattack_mbps] [kappa]
// Defaults reproduce the paper's ns-2 scenario with 15 flows.
#include <cstdio>
#include <cstdlib>

#include "core/model.hpp"
#include "core/optimizer.hpp"
#include "core/planner.hpp"

using namespace pdos;

int main(int argc, char** argv) {
  const int flows = argc > 1 ? std::atoi(argv[1]) : 15;
  const double bottleneck_mbps = argc > 2 ? std::atof(argv[2]) : 15.0;
  const double textent_ms = argc > 3 ? std::atof(argv[3]) : 50.0;
  const double rattack_mbps = argc > 4 ? std::atof(argv[4]) : 25.0;
  const double kappa = argc > 5 ? std::atof(argv[5]) : 1.0;

  AttackPlanRequest request;
  request.victim.aimd = AimdParams::new_reno();
  request.victim.spacket = 1040;
  request.victim.rbottle = mbps(bottleneck_mbps);
  request.victim.rtts = VictimProfile::even_rtts(flows, ms(20), ms(460));
  request.textent = ms(textent_ms);
  request.rattack = mbps(rattack_mbps);
  request.victim_min_rto = sec(1.0);

  std::printf("victim: %d flows, %.0f Mbps bottleneck, RTT 20-460 ms, "
              "AIMD(%.0f, %.1f), C_victim = %.3f\n",
              flows, bottleneck_mbps, request.victim.aimd.a,
              request.victim.aimd.b, c_victim(request.victim));
  std::printf("pulse shape: T_extent = %.0f ms at %.0f Mbps -> C_psi = "
              "%.3f\n\n",
              textent_ms, rattack_mbps,
              c_psi(request.victim, request.textent,
                    request.rattack / request.victim.rbottle));

  std::printf("optimal plans by risk preference:\n");
  for (double k : {0.3, 1.0, 3.0, kappa}) {
    request.kappa = k;
    const AttackPlan plan = plan_attack(request);
    std::printf("  kappa=%-5.2f %s\n", k, plan.summary().c_str());
  }

  request.kappa = kappa;
  const AttackPlan chosen = plan_attack(request);
  std::printf("\ngain landscape at kappa = %.2f (maximum marked *):\n", kappa);
  std::printf("%8s %12s %14s %16s\n", "gamma", "G(gamma)",
              "degradation", "avg_rate_mbps");
  for (double gamma = 0.05; gamma < 1.0; gamma += 0.05) {
    if (gamma <= chosen.c_psi ||
        gamma > request.rattack / request.victim.rbottle) {
      continue;
    }
    const double gain = attack_gain(gamma, chosen.c_psi, kappa);
    const bool near_opt = std::abs(gamma - chosen.gamma) < 0.025;
    std::printf("%8.2f %12.4f %14.4f %16.2f %s\n", gamma, gain,
                1.0 - chosen.c_psi / gamma,
                to_mbps(gamma * request.victim.rbottle),
                near_opt ? "*" : "");
  }
  return 0;
}
