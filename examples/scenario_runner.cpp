// Generic scenario runner: every knob of the experiment pipeline on the
// command line, for exploring configurations beyond the paper's grid.
//
// Usage:
//   scenario_runner [--flows N] [--bottleneck MBPS] [--buffer PKTS]
//                   [--queue red|droptail] [--tcp tahoe|reno|newreno]
//                   [--rtomin MS] [--textent MS] [--rattack MBPS]
//                   [--gamma G | --no-attack] [--kappa K]
//                   [--warmup S] [--measure S] [--seed N]
//                   [--backend full|fast|fluid|hybrid] [--foreground N]
//                   [--shards K]
//   scenario_runner --sweep SPECFILE [--threads N]
//
// --shards K >= 2 partitions the single run into K logical processes and
// runs the per-round shard tasks on a thread pool spanning the machine
// (conservative PDES, DESIGN.md §13). Results are bit-identical to
// --shards 1; only the wall clock changes. Packet backends only.
//
// The first form prints baseline and attacked goodput, measured vs
// predicted degradation, queue drop counters and TCP state statistics for
// a single run. The second hands a key=value campaign spec (see
// src/sweep/spec.hpp) to the parallel sweep engine and prints its CSV
// table to stdout (or the spec's `csv =` path).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "pdos/pdos.hpp"

using namespace pdos;

namespace {

double arg_of(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string arg_of(int argc, char** argv, const char* flag,
                   const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

namespace {

int run_sweep_mode(const std::string& spec_path, int argc, char** argv) {
  sweep::SpecFile file = sweep::load_spec_file(spec_path);
  const double threads = arg_of(argc, argv, "--threads", 0.0);
  if (threads > 0.0) file.options.threads = static_cast<int>(threads);
  file.options.on_progress = [](const sweep::SweepProgress& progress) {
    std::fprintf(stderr, "\r%zu/%zu done, eta %.1fs  ", progress.done,
                 progress.total, progress.eta_seconds);
    if (progress.done == progress.total) std::fprintf(stderr, "\n");
  };
  const sweep::SweepResult result = sweep::run_sweep(file.spec, file.options);
  std::fprintf(stderr, "sweep: %zu ok, %zu failed on %d threads in %.2fs\n",
               result.completed(), result.failures(), result.threads,
               result.wall_seconds);
  if (file.csv_path.empty()) {
    result.write_csv(std::cout);
  } else {
    std::ofstream out(file.csv_path);
    PDOS_REQUIRE(out.good(), "cannot open output: " + file.csv_path);
    result.write_csv(out);
  }
  if (!file.json_path.empty()) {
    std::ofstream out(file.json_path);
    PDOS_REQUIRE(out.good(), "cannot open output: " + file.json_path);
    result.write_json(out);
  }
  return result.failures() == 0 && !result.cancelled ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string spec_path = arg_of(argc, argv, "--sweep", std::string());
  if (!spec_path.empty()) return run_sweep_mode(spec_path, argc, argv);

  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(
      static_cast<int>(arg_of(argc, argv, "--flows", 15)));
  scenario.bottleneck = mbps(arg_of(argc, argv, "--bottleneck", 15.0));
  scenario.buffer_packets = static_cast<std::size_t>(
      arg_of(argc, argv, "--buffer",
             static_cast<double>(scenario.buffer_packets)));
  scenario.tcp.rto_min =
      ms(arg_of(argc, argv, "--rtomin", to_ms(scenario.tcp.rto_min)));
  scenario.seed = static_cast<std::uint64_t>(arg_of(argc, argv, "--seed", 1));

  const std::string queue = arg_of(argc, argv, "--queue", "red");
  scenario.queue =
      queue == "droptail" ? QueueKind::kDropTail : QueueKind::kRed;
  const std::string tcp = arg_of(argc, argv, "--tcp", "newreno");
  scenario.tcp.variant = tcp == "tahoe"  ? TcpVariant::kTahoe
                         : tcp == "reno" ? TcpVariant::kReno
                                         : TcpVariant::kNewReno;
  const std::string backend = arg_of(argc, argv, "--backend", "full");
  const auto parsed_backend = parse_backend(backend);
  if (!parsed_backend) {
    std::fprintf(stderr,
                 "unknown --backend '%s' (want full|fast|fluid|hybrid)\n",
                 backend.c_str());
    return 2;
  }
  scenario.backend = *parsed_backend;
  scenario.hybrid_foreground = static_cast<int>(
      arg_of(argc, argv, "--foreground",
             static_cast<double>(scenario.hybrid_foreground)));
  scenario.shards = static_cast<int>(arg_of(argc, argv, "--shards", 1.0));

  RunControl control;
  control.warmup = sec(arg_of(argc, argv, "--warmup", 5.0));
  control.measure = sec(arg_of(argc, argv, "--measure", 20.0));

  std::printf("scenario: %d flows, %.1f Mbps %s bottleneck, B=%zu pkts, "
              "TCP %s, minRTO=%.0fms, seed=%llu, backend=%s, shards=%d\n",
              scenario.num_flows, to_mbps(scenario.bottleneck),
              queue.c_str(), scenario.buffer_packets,
              tcp_variant_name(scenario.tcp.variant),
              to_ms(scenario.tcp.rto_min),
              static_cast<unsigned long long>(scenario.seed),
              backend_name(scenario.backend), scenario.shards);

  // One warm workspace for the baseline and the attacked run. A sharded
  // run gets a machine-wide pool executor: this is the one-big-scenario
  // case intra-run parallelism exists for (sweeps keep the inline default).
  ScenarioWorkspace ws;
  std::unique_ptr<sweep::ThreadPool> pool;
  if (scenario.shards > 1) {
    pool = std::make_unique<sweep::ThreadPool>();
    ws.set_shard_executor(sweep::pool_shard_executor(*pool));
    std::printf("pdes: %d shards on %d worker threads\n", scenario.shards,
                pool->size());
  }
  const BitRate baseline = ws.baseline(scenario, control);
  std::printf("baseline: %.2f Mbps goodput (%.1f%% utilization), jitter "
              "gauge below\n",
              to_mbps(baseline), 100.0 * baseline / scenario.bottleneck);
  if (has_flag(argc, argv, "--no-attack")) return 0;

  AttackPlanRequest request;
  request.victim = scenario.victim_profile();
  request.textent = ms(arg_of(argc, argv, "--textent", 50.0));
  request.rattack = mbps(arg_of(argc, argv, "--rattack", 25.0));
  request.kappa = arg_of(argc, argv, "--kappa", 1.0);
  request.victim_min_rto = scenario.tcp.rto_min;

  const double gamma = arg_of(argc, argv, "--gamma", -1.0);
  const AttackPlan plan = gamma > 0.0
                              ? plan_attack_at_gamma(request, gamma)
                              : plan_attack(request);
  std::printf("\n%s\n\n", plan.summary().c_str());

  const GainMeasurement point =
      ws.gain(scenario, plan.train, request.kappa, control, baseline);
  const RunResult& run = point.run;
  std::printf("under attack: %.2f Mbps goodput\n",
              to_mbps(run.goodput_rate));
  std::printf("degradation Gamma: measured %.3f vs predicted %.3f\n",
              point.degradation, plan.predicted_degradation);
  std::printf("attack gain G:     measured %.3f vs predicted %.3f\n",
              point.gain, plan.predicted_gain);
  std::printf("delivery jitter:   %.1f ms (smoothed)\n",
              to_ms(run.mean_delivery_jitter));
  std::printf("bottleneck drops:  %llu total (%llu tcp, %llu attack; "
              "RED early %llu, forced %llu)\n",
              static_cast<unsigned long long>(run.bottleneck_queue.dropped),
              static_cast<unsigned long long>(
                  run.bottleneck_queue.dropped_tcp),
              static_cast<unsigned long long>(
                  run.bottleneck_queue.dropped_attack),
              static_cast<unsigned long long>(run.red_early_drops),
              static_cast<unsigned long long>(run.red_forced_drops));
  std::printf("TCP state:         %llu timeouts, %llu fast recoveries, "
              "%llu retransmits\n",
              static_cast<unsigned long long>(run.total_timeouts),
              static_cast<unsigned long long>(run.total_fast_recoveries),
              static_cast<unsigned long long>(run.total_retransmits));
  std::printf("simulation:        %llu events, %llu attack packets\n",
              static_cast<unsigned long long>(run.events_executed),
              static_cast<unsigned long long>(run.attack_packets_sent));
  if (scenario.shards > 1) {
    std::printf("pdes:              %llu rounds, %llu cross-shard packets\n",
                static_cast<unsigned long long>(ws.pdes_rounds()),
                static_cast<unsigned long long>(ws.pdes_messages()));
  }
  return 0;
}
