// Generic scenario runner: every knob of the experiment pipeline on the
// command line, for exploring configurations beyond the paper's grid.
//
// Usage:
//   scenario_runner [--flows N] [--bottleneck MBPS] [--buffer PKTS]
//                   [--queue red|droptail] [--tcp tahoe|reno|newreno]
//                   [--rtomin MS] [--textent MS] [--rattack MBPS]
//                   [--gamma G | --no-attack] [--kappa K]
//                   [--warmup S] [--measure S] [--seed N]
//
// Prints baseline and attacked goodput, measured vs predicted degradation,
// queue drop counters and TCP state statistics.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pdos/pdos.hpp"

using namespace pdos;

namespace {

double arg_of(int argc, char** argv, const char* flag, double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

std::string arg_of(int argc, char** argv, const char* flag,
                   const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ScenarioConfig scenario = ScenarioConfig::ns2_dumbbell(
      static_cast<int>(arg_of(argc, argv, "--flows", 15)));
  scenario.bottleneck = mbps(arg_of(argc, argv, "--bottleneck", 15.0));
  scenario.buffer_packets = static_cast<std::size_t>(
      arg_of(argc, argv, "--buffer",
             static_cast<double>(scenario.buffer_packets)));
  scenario.tcp.rto_min =
      ms(arg_of(argc, argv, "--rtomin", to_ms(scenario.tcp.rto_min)));
  scenario.seed = static_cast<std::uint64_t>(arg_of(argc, argv, "--seed", 1));

  const std::string queue = arg_of(argc, argv, "--queue", "red");
  scenario.queue =
      queue == "droptail" ? QueueKind::kDropTail : QueueKind::kRed;
  const std::string tcp = arg_of(argc, argv, "--tcp", "newreno");
  scenario.tcp.variant = tcp == "tahoe"  ? TcpVariant::kTahoe
                         : tcp == "reno" ? TcpVariant::kReno
                                         : TcpVariant::kNewReno;

  RunControl control;
  control.warmup = sec(arg_of(argc, argv, "--warmup", 5.0));
  control.measure = sec(arg_of(argc, argv, "--measure", 20.0));

  std::printf("scenario: %d flows, %.1f Mbps %s bottleneck, B=%zu pkts, "
              "TCP %s, minRTO=%.0fms, seed=%llu\n",
              scenario.num_flows, to_mbps(scenario.bottleneck),
              queue.c_str(), scenario.buffer_packets,
              tcp_variant_name(scenario.tcp.variant),
              to_ms(scenario.tcp.rto_min),
              static_cast<unsigned long long>(scenario.seed));

  const BitRate baseline = measure_baseline(scenario, control);
  std::printf("baseline: %.2f Mbps goodput (%.1f%% utilization), jitter "
              "gauge below\n",
              to_mbps(baseline), 100.0 * baseline / scenario.bottleneck);
  if (has_flag(argc, argv, "--no-attack")) return 0;

  AttackPlanRequest request;
  request.victim = scenario.victim_profile();
  request.textent = ms(arg_of(argc, argv, "--textent", 50.0));
  request.rattack = mbps(arg_of(argc, argv, "--rattack", 25.0));
  request.kappa = arg_of(argc, argv, "--kappa", 1.0);
  request.victim_min_rto = scenario.tcp.rto_min;

  const double gamma = arg_of(argc, argv, "--gamma", -1.0);
  const AttackPlan plan = gamma > 0.0
                              ? plan_attack_at_gamma(request, gamma)
                              : plan_attack(request);
  std::printf("\n%s\n\n", plan.summary().c_str());

  const GainMeasurement point =
      measure_gain(scenario, plan.train, request.kappa, control, baseline);
  const RunResult& run = point.run;
  std::printf("under attack: %.2f Mbps goodput\n",
              to_mbps(run.goodput_rate));
  std::printf("degradation Gamma: measured %.3f vs predicted %.3f\n",
              point.degradation, plan.predicted_degradation);
  std::printf("attack gain G:     measured %.3f vs predicted %.3f\n",
              point.gain, plan.predicted_gain);
  std::printf("delivery jitter:   %.1f ms (smoothed)\n",
              to_ms(run.mean_delivery_jitter));
  std::printf("bottleneck drops:  %llu total (%llu tcp, %llu attack; "
              "RED early %llu, forced %llu)\n",
              static_cast<unsigned long long>(run.bottleneck_queue.dropped),
              static_cast<unsigned long long>(
                  run.bottleneck_queue.dropped_tcp),
              static_cast<unsigned long long>(
                  run.bottleneck_queue.dropped_attack),
              static_cast<unsigned long long>(run.red_early_drops),
              static_cast<unsigned long long>(run.red_forced_drops));
  std::printf("TCP state:         %llu timeouts, %llu fast recoveries, "
              "%llu retransmits\n",
              static_cast<unsigned long long>(run.total_timeouts),
              static_cast<unsigned long long>(run.total_fast_recoveries),
              static_cast<unsigned long long>(run.total_retransmits));
  std::printf("simulation:        %llu events, %llu attack packets\n",
              static_cast<unsigned long long>(run.events_executed),
              static_cast<unsigned long long>(run.attack_packets_sent));
  return 0;
}
